#include "nbtinoc/traffic/request_reply.hpp"

#include <stdexcept>

namespace nbtinoc::traffic {

RequestReplySource::RequestReplySource(noc::NodeId node, int mesh_nodes,
                                       RequestReplyConfig config, ReplyBoard* board,
                                       std::uint64_t seed)
    : node_(node), mesh_nodes_(mesh_nodes), config_(config), board_(board), rng_(seed) {
  if (board == nullptr) throw std::invalid_argument("RequestReplySource: null board");
  if (config.request_rate < 0.0 || config.request_rate > 1.0)
    throw std::invalid_argument("RequestReplySource: bad request rate");
  if (config.request_vnet == config.reply_vnet)
    throw std::invalid_argument("RequestReplySource: request and reply must use distinct vnets");
}

std::optional<noc::PacketRequest> RequestReplySource::maybe_generate(sim::Cycle now) {
  // Replies take priority: the protocol requires them to drain.
  auto& pending = board_->of(node_);
  if (!pending.empty() && pending.front().ready_at <= now) {
    const noc::NodeId dst = pending.front().dst;
    pending.pop_front();
    ++replies_sent_;
    return noc::PacketRequest{dst, config_.reply_length, config_.reply_vnet};
  }

  if (rng_.next_bernoulli(config_.request_rate)) {
    // Uniform server choice among the other nodes.
    const auto draw = static_cast<noc::NodeId>(
        rng_.next_below(static_cast<std::uint64_t>(mesh_nodes_ - 1)));
    const noc::NodeId server = draw >= node_ ? draw + 1 : draw;
    // The reply becomes ready after the request's flight + service time;
    // flight time is approximated by the service delay knob.
    board_->post(server, ReplyBoard::PendingReply{now + config_.service_delay, node_});
    ++requests_sent_;
    return noc::PacketRequest{server, config_.request_length, config_.request_vnet};
  }
  return std::nullopt;
}

namespace {
/// Wrapper that owns the shared ReplyBoard in the first source.
class OwningRequestReplySource final : public noc::ITrafficSource {
 public:
  OwningRequestReplySource(std::shared_ptr<ReplyBoard> board, noc::NodeId node, int mesh_nodes,
                           RequestReplyConfig config, std::uint64_t seed)
      : board_(std::move(board)), source_(node, mesh_nodes, config, board_.get(), seed) {}
  std::optional<noc::PacketRequest> maybe_generate(sim::Cycle now) override {
    return source_.maybe_generate(now);
  }

 private:
  std::shared_ptr<ReplyBoard> board_;
  RequestReplySource source_;
};
}  // namespace

void install_request_reply_traffic(noc::Network& network, RequestReplyConfig config,
                                   std::uint64_t base_seed) {
  if (network.config().num_vnets < 2)
    throw std::invalid_argument("install_request_reply_traffic: needs >= 2 virtual networks");
  auto board = std::make_shared<ReplyBoard>(network.nodes());
  util::SplitMix64 seeder(base_seed);
  for (noc::NodeId id = 0; id < network.nodes(); ++id) {
    network.set_traffic_source(id, std::make_unique<OwningRequestReplySource>(
                                       board, id, network.nodes(), config, seeder.next()));
  }
}

}  // namespace nbtinoc::traffic
