#include "nbtinoc/traffic/benchmarks.hpp"

#include <sstream>
#include <stdexcept>

namespace nbtinoc::traffic {

namespace {
AppProfile make(const char* name, double rate, double burstiness, double burst_cycles,
                double locality, double hotspot) {
  AppProfile p;
  p.name = name;
  p.mean_rate = rate;
  p.burstiness = burstiness;
  p.mean_burst_cycles = burst_cycles;
  p.locality = locality;
  p.hotspot_fraction = hotspot;
  return p;
}
}  // namespace

const std::vector<AppProfile>& benchmark_suite() {
  // Rates/burst shapes are calibrated so that random 2-VC mixes reproduce
  // the per-port NBTI-duty-cycle statistics of the paper's Table IV
  // (averages ~2-25%, standard deviations of the same order — full-system
  // coherence traffic is dominated by long communication phases).
  static const std::vector<AppProfile> suite = {
      // SPLASH2 substitutes: moderate mean load, long bursty phases.
      make("fft", 0.210, 7.0, 1600, 0.25, 0.10),
      make("lu", 0.140, 5.0, 2400, 0.35, 0.10),
      make("radix", 0.280, 8.0, 1200, 0.15, 0.15),
      make("barnes", 0.105, 5.0, 3200, 0.30, 0.10),
      make("ocean", 0.245, 7.0, 2000, 0.45, 0.05),
      make("water-nsq", 0.088, 3.5, 4000, 0.30, 0.10),
      make("water-spatial", 0.098, 4.5, 3600, 0.40, 0.08),
      make("raytrace", 0.175, 10.0, 800, 0.10, 0.20),
      make("fmm", 0.122, 5.0, 2800, 0.30, 0.10),
      make("cholesky", 0.158, 6.0, 2200, 0.25, 0.12),
      make("radiosity", 0.192, 8.0, 1400, 0.20, 0.15),
      make("volrend", 0.147, 9.0, 1000, 0.15, 0.18),
      // WCET substitutes: tiny kernels, almost compute-only.
      make("wcet-crc", 0.021, 3.5, 4800, 0.20, 0.30),
      make("wcet-fir", 0.035, 3.5, 4000, 0.20, 0.30),
      make("wcet-matmult", 0.042, 4.5, 3200, 0.25, 0.25),
      make("wcet-bsort", 0.028, 3.5, 4400, 0.20, 0.30),
      make("wcet-fibcall", 0.010, 2.5, 6400, 0.20, 0.30),
      make("wcet-jfdctint", 0.052, 4.5, 2800, 0.25, 0.25),
      make("wcet-edn", 0.038, 3.5, 3600, 0.20, 0.30),
      make("wcet-ndes", 0.031, 3.5, 4000, 0.20, 0.30),
  };
  return suite;
}

const AppProfile& benchmark_by_name(const std::string& name) {
  for (const auto& p : benchmark_suite())
    if (p.name == name) return p;
  throw std::invalid_argument("unknown benchmark: " + name);
}

std::string BenchmarkMix::describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < names.size(); ++i) {
    os << "core" << i << "=" << names[i];
    if (i + 1 < names.size()) os << ", ";
  }
  return os.str();
}

BenchmarkMix random_mix(int cores, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto& suite = benchmark_suite();
  BenchmarkMix mix;
  mix.names.reserve(static_cast<std::size_t>(cores));
  for (int i = 0; i < cores; ++i)
    mix.names.push_back(suite[static_cast<std::size_t>(rng.next_below(suite.size()))].name);
  return mix;
}

void install_benchmark_mix(noc::Network& network, const BenchmarkMix& mix, std::uint64_t seed,
                           noc::NodeId hotspot, double rate_scale) {
  const auto& cfg = network.config();
  if (static_cast<int>(mix.names.size()) != network.nodes())
    throw std::invalid_argument("install_benchmark_mix: mix size != node count");
  if (hotspot < 0) hotspot = network.nodes() - 1;
  util::SplitMix64 seeder(seed);
  for (noc::NodeId id = 0; id < network.nodes(); ++id) {
    AppProfile profile = benchmark_by_name(mix.names[static_cast<std::size_t>(id)]);
    profile.mean_rate *= rate_scale;
    profile.packet_length = cfg.packet_length;
    network.set_traffic_source(id, std::make_unique<AppTrafficSource>(id, profile, cfg.width,
                                                                      cfg.height, hotspot,
                                                                      seeder.next()));
  }
}

}  // namespace nbtinoc::traffic
