#include "nbtinoc/traffic/synthetic.hpp"

#include <memory>
#include <stdexcept>

namespace nbtinoc::traffic {

SyntheticSource::SyntheticSource(noc::NodeId src, double injection_rate, int packet_length,
                                 DestinationPattern pattern, std::uint64_t seed)
    : src_(src),
      injection_rate_(injection_rate),
      packet_length_(packet_length),
      packet_probability_(injection_rate / static_cast<double>(packet_length)),
      pattern_(pattern),
      rng_(seed) {
  if (injection_rate < 0.0) throw std::invalid_argument("SyntheticSource: negative rate");
  if (packet_length < 1) throw std::invalid_argument("SyntheticSource: packet_length < 1");
  if (packet_probability_ > 1.0)
    throw std::invalid_argument("SyntheticSource: rate exceeds one packet per cycle");
}

std::optional<noc::PacketRequest> SyntheticSource::maybe_generate(sim::Cycle) {
  if (!rng_.next_bernoulli(packet_probability_)) return std::nullopt;
  return noc::PacketRequest{pattern_.pick(src_, rng_), packet_length_};
}

void install_synthetic_traffic(noc::Network& network, PatternKind pattern, double injection_rate,
                               std::uint64_t base_seed) {
  const auto& cfg = network.config();
  util::SplitMix64 seeder(base_seed);
  for (noc::NodeId id = 0; id < network.nodes(); ++id) {
    DestinationPattern dest(pattern, cfg.width, cfg.height);
    network.set_traffic_source(
        id, std::make_unique<SyntheticSource>(id, injection_rate, cfg.packet_length, dest,
                                              seeder.next()));
  }
}

}  // namespace nbtinoc::traffic
