#include "nbtinoc/traffic/synthetic.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace nbtinoc::traffic {

SyntheticSource::SyntheticSource(noc::NodeId src, double injection_rate, int packet_length,
                                 DestinationPattern pattern, std::uint64_t seed)
    : src_(src),
      injection_rate_(injection_rate),
      packet_length_(packet_length),
      packet_probability_(injection_rate / static_cast<double>(packet_length)),
      pattern_(pattern),
      rng_(seed) {
  if (injection_rate < 0.0) throw std::invalid_argument("SyntheticSource: negative rate");
  if (packet_length < 1) throw std::invalid_argument("SyntheticSource: packet_length < 1");
  if (packet_probability_ > 1.0)
    throw std::invalid_argument("SyntheticSource: rate exceeds one packet per cycle");
}

namespace {
// How far past `now` next_event_cycle() is willing to pre-roll looking for
// the next fire. At the paper's lowest rates (p ~ 1e-2) the expected gap is
// ~100 cycles, so one probe nearly always finds the fire; if it does not,
// the conservative horizon (everything rolled is known packet-free) lets
// the caller skip there and re-ask.
constexpr sim::Cycle kLookaheadCycles = 4096;
}  // namespace

void SyntheticSource::roll_until(sim::Cycle limit) {
  // Reproduce the stepped draw order exactly: one Bernoulli per cycle, in
  // cycle order, stopping at the first success (whose destination draw is
  // deferred to consumption time, as in stepped mode). p <= 0 consumes no
  // RNG state per Xoshiro256::next_bernoulli, so skipping the loop is
  // stream-equivalent, not just an optimization.
  if (packet_probability_ <= 0.0) {
    rolled_until_ = std::max(rolled_until_, limit + 1);
    return;
  }
  while (next_fire_ == sim::kCycleNever && rolled_until_ <= limit) {
    if (rng_.next_bernoulli(packet_probability_)) next_fire_ = rolled_until_;
    ++rolled_until_;
  }
}

std::optional<noc::PacketRequest> SyntheticSource::maybe_generate(sim::Cycle now) {
  roll_until(now);
  if (next_fire_ > now) return std::nullopt;  // covers kCycleNever
  next_fire_ = sim::kCycleNever;
  return noc::PacketRequest{pattern_.pick(src_, rng_), packet_length_};
}

sim::Cycle SyntheticSource::next_event_cycle(sim::Cycle now) {
  if (packet_probability_ <= 0.0) return sim::kCycleNever;
  if (next_fire_ == sim::kCycleNever) roll_until(now + kLookaheadCycles);
  if (next_fire_ != sim::kCycleNever) return std::max(now, next_fire_);
  // No fire in the rolled prefix: every cycle below rolled_until_ is known
  // packet-free, so it is a safe (conservative) horizon.
  return rolled_until_;
}

void install_synthetic_traffic(noc::Network& network, PatternKind pattern, double injection_rate,
                               std::uint64_t base_seed) {
  const auto& cfg = network.config();
  util::SplitMix64 seeder(base_seed);
  for (noc::NodeId id = 0; id < network.nodes(); ++id) {
    DestinationPattern dest(pattern, cfg.width, cfg.height);
    network.set_traffic_source(
        id, std::make_unique<SyntheticSource>(id, injection_rate, cfg.packet_length, dest,
                                              seeder.next()));
  }
}

}  // namespace nbtinoc::traffic
