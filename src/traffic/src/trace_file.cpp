#include "nbtinoc/traffic/trace_file.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

#include "nbtinoc/noc/network.hpp"
#include "nbtinoc/traffic/trace.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace nbtinoc::traffic {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) out.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) out.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
}

std::uint32_t get_u32(const unsigned char* p) {
  return p[0] | (p[1] << 8) | (p[2] << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int b = 7; b >= 0; --b) v = (v << 8) | p[b];
  return v;
}

}  // namespace

std::string serialize_trace(const Trace& trace, int node_count, std::string_view digest) {
  if (node_count < 1) throw TraceError("serialize_trace: node_count must be >= 1");
  const auto& records = trace.records();
  // Validate every record and count the per-node slice sizes first.
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(node_count), 0);
  int vnet_count = 1;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& rec = records[i];
    const auto fail = [&](const std::string& msg) {
      return TraceError("serialize_trace: record " + std::to_string(i) + ": " + msg);
    };
    if (rec.src < 0 || rec.src >= node_count)
      throw fail("src " + std::to_string(rec.src) + " out of range for a " +
                 std::to_string(node_count) + "-node network");
    if (rec.dst < 0 || rec.dst >= node_count)
      throw fail("dst " + std::to_string(rec.dst) + " out of range for a " +
                 std::to_string(node_count) + "-node network");
    if (rec.length < 1) throw fail("length must be >= 1, got " + std::to_string(rec.length));
    if (rec.length > 0xffff)
      throw fail("length " + std::to_string(rec.length) + " exceeds the u16 record field");
    if (rec.vnet < 0 || rec.vnet > 0xffff)
      throw fail("vnet " + std::to_string(rec.vnet) + " does not fit the u16 record field");
    ++counts[static_cast<std::size_t>(rec.src)];
    vnet_count = std::max(vnet_count, rec.vnet + 1);
  }

  std::string out;
  out.reserve(64 + digest.size() + static_cast<std::size_t>(node_count) * 8 +
              records.size() * kTraceRecordBytes);
  out.append(kTraceMagic);
  put_u32(out, kTraceVersion);
  put_u32(out, static_cast<std::uint32_t>(node_count));
  put_u32(out, static_cast<std::uint32_t>(vnet_count));
  put_u64(out, static_cast<std::uint64_t>(records.size()));
  put_u32(out, static_cast<std::uint32_t>(digest.size()));
  out.append(digest);
  for (std::uint64_t c : counts) put_u64(out, c);
  while (out.size() % 8 != 0) out.push_back('\0');

  // Records grouped by node and sorted by cycle within each group — the
  // layout the reader validates. The sort is stable on (src, cycle), so the
  // insertion (capture/burst) order of same-cycle records is preserved
  // exactly and a capture round-trips byte-identically.
  std::vector<std::size_t> order(records.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&records](std::size_t a, std::size_t b) {
    if (records[a].src != records[b].src) return records[a].src < records[b].src;
    return records[a].cycle < records[b].cycle;
  });
  for (std::size_t i : order) {
    const TraceRecord& rec = records[i];
    put_u64(out, static_cast<std::uint64_t>(rec.cycle));
    put_u32(out, static_cast<std::uint32_t>(rec.dst));
    out.push_back(static_cast<char>(rec.length & 0xff));
    out.push_back(static_cast<char>((rec.length >> 8) & 0xff));
    out.push_back(static_cast<char>(rec.vnet & 0xff));
    out.push_back(static_cast<char>((rec.vnet >> 8) & 0xff));
  }
  return out;
}

void TraceFile::parse(std::string_view origin) {
  const std::string where(origin);
  const auto fail = [&](const std::string& msg) { return TraceError(where + ": " + msg); };
  std::size_t pos = 0;
  const auto need = [&](std::size_t bytes, const char* what) {
    if (size_ - pos < bytes)
      throw fail(std::string("truncated trace: ") + what + " needs " + std::to_string(bytes) +
                 " bytes at offset " + std::to_string(pos) + ", file has " +
                 std::to_string(size_ - pos));
  };

  need(kTraceMagic.size(), "magic");
  if (std::memcmp(base_, kTraceMagic.data(), kTraceMagic.size()) != 0)
    throw fail("not an NBTITRACE file (bad magic)");
  pos += kTraceMagic.size();

  need(4, "version");
  const std::uint32_t version = get_u32(base_ + pos);
  pos += 4;
  if (version != kTraceVersion)
    throw fail("unsupported trace version " + std::to_string(version) + " (this build reads " +
               std::to_string(kTraceVersion) + ")");

  need(16, "header");
  const std::uint32_t nodes = get_u32(base_ + pos);
  const std::uint32_t vnets = get_u32(base_ + pos + 4);
  record_count_ = get_u64(base_ + pos + 8);
  pos += 16;
  if (nodes == 0 || nodes > static_cast<std::uint32_t>(std::numeric_limits<int>::max()))
    throw fail("node count " + std::to_string(nodes) + " is not a positive int");
  if (vnets == 0) throw fail("vnet count must be >= 1");
  node_count_ = static_cast<int>(nodes);
  vnet_count_ = static_cast<int>(vnets);

  need(4, "digest length");
  const std::uint32_t digest_len = get_u32(base_ + pos);
  pos += 4;
  need(digest_len, "digest");
  digest_.assign(reinterpret_cast<const char*>(base_ + pos), digest_len);
  pos += digest_len;

  need(static_cast<std::size_t>(nodes) * 8, "per-node index");
  starts_.assign(static_cast<std::size_t>(nodes) + 1, 0);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    starts_[n + 1] = starts_[n] + get_u64(base_ + pos);
    pos += 8;
  }
  if (starts_[nodes] != record_count_)
    throw fail("per-node index sums to " + std::to_string(starts_[nodes]) + " records, header says " +
               std::to_string(record_count_));

  while (pos % 8 != 0) {
    need(1, "alignment padding");
    if (base_[pos] != 0) throw fail("nonzero alignment padding at offset " + std::to_string(pos));
    ++pos;
  }

  if (record_count_ > (size_ - pos) / kTraceRecordBytes)
    throw fail("truncated trace: " + std::to_string(record_count_) + " records need " +
               std::to_string(record_count_ * kTraceRecordBytes) + " bytes, file has " +
               std::to_string(size_ - pos));
  records_ = base_ + pos;
  pos += record_count_ * kTraceRecordBytes;
  if (pos != size_)
    throw fail("trailing garbage: " + std::to_string(size_ - pos) + " bytes past the record array");

  // One full validation pass, so the replay hot path never rechecks:
  // per-record bounds and per-slice cycle monotonicity.
  for (int n = 0; n < node_count_; ++n) {
    const TraceSlice s = slice(n);
    sim::Cycle prev = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      const auto rec_fail = [&](const std::string& msg) {
        return fail("node " + std::to_string(n) + " record " + std::to_string(i) + ": " + msg);
      };
      if (s.dst(i) < 0 || s.dst(i) >= node_count_)
        throw rec_fail("dst " + std::to_string(s.dst(i)) + " out of range for a " +
                       std::to_string(node_count_) + "-node network");
      if (s.length(i) < 1) throw rec_fail("length must be >= 1");
      if (s.vnet(i) >= vnet_count_)
        throw rec_fail("vnet " + std::to_string(s.vnet(i)) + " >= declared vnet count " +
                       std::to_string(vnet_count_));
      if (i > 0 && s.cycle(i) < prev)
        throw rec_fail("cycle " + std::to_string(s.cycle(i)) + " is before the previous record (" +
                       std::to_string(prev) + "); slices must be non-decreasing");
      prev = s.cycle(i);
    }
  }
}

std::shared_ptr<const TraceFile> TraceFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw TraceError("TraceFile::open: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw TraceError("TraceFile::open: cannot stat " + path);
  }
  auto file = std::shared_ptr<TraceFile>(new TraceFile());
  file->size_ = static_cast<std::size_t>(st.st_size);
  if (file->size_ > 0) {
    // One read-only shared mapping: every TraceReplaySource, sweep worker
    // and fleet shard in the process reads these pages; separate processes
    // mapping the same file share them through the page cache.
    void* map = ::mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) throw TraceError("TraceFile::open: mmap failed for " + path);
    file->map_ = map;
    file->base_ = static_cast<const unsigned char*>(map);
  } else {
    ::close(fd);
    file->base_ = reinterpret_cast<const unsigned char*>(file->owned_.data());
  }
  file->parse("TraceFile::open: " + path);
  return file;
}

std::shared_ptr<const TraceFile> TraceFile::from_bytes(std::string bytes) {
  auto file = std::shared_ptr<TraceFile>(new TraceFile());
  file->owned_ = std::move(bytes);
  file->base_ = reinterpret_cast<const unsigned char*>(file->owned_.data());
  file->size_ = file->owned_.size();
  file->parse("TraceFile::from_bytes");
  return file;
}

std::shared_ptr<const TraceFile> TraceFile::from_trace(const Trace& trace, int node_count,
                                                       std::string_view digest) {
  return from_bytes(serialize_trace(trace, node_count, digest));
}

TraceFile::~TraceFile() {
  if (map_ != nullptr) ::munmap(map_, size_);
}

Trace TraceFile::to_trace() const {
  // Interleaves the per-node slices back into global (cycle, node) order —
  // the canonical capture order, so serialize(to_trace()) round-trips
  // byte-identically.
  Trace trace;
  std::vector<std::size_t> cursor(static_cast<std::size_t>(node_count_), 0);
  for (std::uint64_t emitted = 0; emitted < record_count_;) {
    sim::Cycle best = sim::kCycleNever;
    int best_node = -1;
    for (int n = 0; n < node_count_; ++n) {
      const TraceSlice s = slice(n);
      const std::size_t i = cursor[static_cast<std::size_t>(n)];
      if (i < s.size() && (best_node < 0 || s.cycle(i) < best)) {
        best = s.cycle(i);
        best_node = n;
      }
    }
    const TraceSlice s = slice(best_node);
    std::size_t& i = cursor[static_cast<std::size_t>(best_node)];
    // Take the node's whole same-cycle run, matching capture's per-node
    // burst grouping within one cycle.
    while (i < s.size() && s.cycle(i) == best) {
      trace.add(TraceRecord{s.cycle(i), static_cast<noc::NodeId>(best_node), s.dst(i),
                            s.length(i), s.vnet(i)});
      ++i;
      ++emitted;
    }
  }
  return trace;
}

void write_trace_file(const std::string& path, const Trace& trace, int node_count,
                      std::string_view digest) {
  const std::string bytes = serialize_trace(trace, node_count, digest);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw TraceError("write_trace_file: cannot open " + path + " for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) throw TraceError("write_trace_file: short write to " + path);
}

void convert_csv_trace(const std::string& csv_path, const std::string& out_path, int node_count,
                       std::string_view digest) {
  write_trace_file(out_path, Trace::load(csv_path, node_count), node_count, digest);
}

void install_trace_replay(noc::Network& network, std::shared_ptr<const TraceFile> file) {
  if (file == nullptr) throw TraceError("install_trace_replay: null TraceFile");
  if (file->node_count() != network.nodes())
    throw TraceError("install_trace_replay: trace was captured on " +
                     std::to_string(file->node_count()) + " nodes but this network has " +
                     std::to_string(network.nodes()) + " (trace digest: \"" + file->digest() +
                     "\")");
  for (noc::NodeId id = 0; id < network.nodes(); ++id)
    network.set_traffic_source(id, std::make_unique<TraceReplaySource>(file, id));
}

}  // namespace nbtinoc::traffic
