#include "nbtinoc/traffic/patterns.hpp"

#include <stdexcept>

#include "nbtinoc/noc/routing.hpp"
#include "nbtinoc/util/strings.hpp"

namespace nbtinoc::traffic {

PatternKind parse_pattern(const std::string& name) {
  const std::string n = util::to_lower(name);
  if (n == "uniform" || n == "uniform_random" || n == "ur") return PatternKind::kUniform;
  if (n == "transpose") return PatternKind::kTranspose;
  if (n == "bit_complement" || n == "bitcomp") return PatternKind::kBitComplement;
  if (n == "bit_reverse" || n == "bitrev") return PatternKind::kBitReverse;
  if (n == "tornado") return PatternKind::kTornado;
  if (n == "neighbor") return PatternKind::kNeighbor;
  if (n == "hotspot") return PatternKind::kHotspot;
  if (n == "shuffle") return PatternKind::kShuffle;
  throw std::invalid_argument("unknown traffic pattern: " + name);
}

std::string to_string(PatternKind kind) {
  switch (kind) {
    case PatternKind::kUniform:
      return "uniform";
    case PatternKind::kTranspose:
      return "transpose";
    case PatternKind::kBitComplement:
      return "bit_complement";
    case PatternKind::kBitReverse:
      return "bit_reverse";
    case PatternKind::kTornado:
      return "tornado";
    case PatternKind::kNeighbor:
      return "neighbor";
    case PatternKind::kHotspot:
      return "hotspot";
    case PatternKind::kShuffle:
      return "shuffle";
  }
  return "?";
}

DestinationPattern::DestinationPattern(PatternKind kind, int width, int height,
                                       noc::NodeId hotspot, double hotspot_fraction)
    : kind_(kind), width_(width), height_(height), hotspot_(hotspot),
      hotspot_fraction_(hotspot_fraction) {
  if (width < 1 || height < 1) throw std::invalid_argument("DestinationPattern: bad mesh size");
}

noc::NodeId DestinationPattern::uniform_other(noc::NodeId src, util::Xoshiro256& rng) const {
  const int n = width_ * height_;
  // Draw over n-1 slots and skip src: uniform over all other nodes.
  const auto draw = static_cast<noc::NodeId>(rng.next_below(static_cast<std::uint64_t>(n - 1)));
  return draw >= src ? draw + 1 : draw;
}

namespace {
int reverse_bits(int value, int bits) {
  int out = 0;
  for (int i = 0; i < bits; ++i)
    if (value & (1 << i)) out |= 1 << (bits - 1 - i);
  return out;
}

int bits_for(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}
}  // namespace

noc::NodeId DestinationPattern::deterministic_image(noc::NodeId src) const {
  const int n = width_ * height_;
  const noc::Coord c = noc::coord_of(src, width_);
  switch (kind_) {
    case PatternKind::kTranspose: {
      // Only exact on square meshes; clamp otherwise.
      const noc::Coord t{c.y % width_, c.x % height_};
      return noc::id_of(t, width_);
    }
    case PatternKind::kBitComplement:
      return (n - 1) - src;
    case PatternKind::kBitReverse:
      return reverse_bits(src, bits_for(n)) % n;
    case PatternKind::kTornado: {
      const noc::Coord t{(c.x + width_ / 2) % width_, c.y};
      return noc::id_of(t, width_);
    }
    case PatternKind::kNeighbor: {
      const noc::Coord t{(c.x + 1) % width_, c.y};
      return noc::id_of(t, width_);
    }
    case PatternKind::kShuffle: {
      const int bits = bits_for(n);
      const int rotated = ((src << 1) | (src >> (bits - 1))) & ((1 << bits) - 1);
      return rotated % n;
    }
    default:
      return src;
  }
}

noc::NodeId DestinationPattern::pick(noc::NodeId src, util::Xoshiro256& rng) const {
  switch (kind_) {
    case PatternKind::kUniform:
      return uniform_other(src, rng);
    case PatternKind::kHotspot: {
      if (src != hotspot_ && rng.next_bernoulli(hotspot_fraction_)) return hotspot_;
      return uniform_other(src, rng);
    }
    default: {
      const noc::NodeId dst = deterministic_image(src);
      return dst == src ? uniform_other(src, rng) : dst;
    }
  }
}

}  // namespace nbtinoc::traffic
