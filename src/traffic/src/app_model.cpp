#include "nbtinoc/traffic/app_model.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "nbtinoc/noc/routing.hpp"

namespace nbtinoc::traffic {

AppTrafficSource::AppTrafficSource(noc::NodeId src, const AppProfile& profile, int width,
                                   int height, noc::NodeId hotspot, std::uint64_t seed)
    : src_(src), profile_(profile), width_(width), height_(height), hotspot_(hotspot), rng_(seed) {
  if (profile.mean_rate < 0.0) throw std::invalid_argument("AppTrafficSource: negative rate");
  if (profile.burstiness < 1.0) throw std::invalid_argument("AppTrafficSource: burstiness < 1");
  if (profile.mean_burst_cycles < 1.0)
    throw std::invalid_argument("AppTrafficSource: burst length < 1 cycle");
  if (profile.packet_length < 1) throw std::invalid_argument("AppTrafficSource: bad packet length");

  // Off-state carries a small residual load (prefetch/writeback trickle);
  // the on-state rate and the on-state dwell fraction are solved so the
  // long-run mean equals profile.mean_rate.
  const double r_on = profile.burstiness * profile.mean_rate;
  const double r_off = 0.1 * profile.mean_rate;
  p_on_packet_ = std::min(1.0, r_on / profile.packet_length);
  p_off_packet_ = std::min(1.0, r_off / profile.packet_length);
  const double pi_on =
      profile.burstiness > 1.0 ? (profile.mean_rate - r_off) / (r_on - r_off) : 1.0;
  p_exit_on_ = 1.0 / profile.mean_burst_cycles;
  if (pi_on >= 1.0) {
    p_exit_off_ = 1.0;  // degenerate: always on
  } else {
    p_exit_off_ = std::min(1.0, pi_on * p_exit_on_ / (1.0 - pi_on));
  }
}

double AppTrafficSource::mean_packet_probability() const {
  return profile_.mean_rate / static_cast<double>(profile_.packet_length);
}

noc::NodeId AppTrafficSource::pick_destination() {
  const double roll = rng_.next_double();
  if (roll < profile_.locality) {
    // Random existing mesh neighbor (coherence with the data's owner tile).
    std::vector<noc::NodeId> neighbors;
    for (int d = 0; d < 4; ++d) {
      const noc::NodeId nb = noc::neighbor_of(src_, static_cast<noc::Dir>(d), width_, height_);
      if (nb >= 0) neighbors.push_back(nb);
    }
    if (!neighbors.empty())
      return neighbors[static_cast<std::size_t>(rng_.next_below(neighbors.size()))];
  } else if (roll < profile_.locality + profile_.hotspot_fraction && hotspot_ != src_) {
    return hotspot_;  // directory / memory-controller tile
  }
  // Address-interleaved L2 bank access: uniform over other nodes.
  const int n = width_ * height_;
  const auto draw = static_cast<noc::NodeId>(rng_.next_below(static_cast<std::uint64_t>(n - 1)));
  return draw >= src_ ? draw + 1 : draw;
}

namespace {
// Bounded pre-roll window for next_event_cycle (see SyntheticSource).
constexpr sim::Cycle kLookaheadCycles = 4096;
}  // namespace

void AppTrafficSource::roll_until(sim::Cycle limit) {
  // Exact stepped draw order per cycle: phase transition first, then
  // emission from the (possibly new) state; the destination draws of a
  // successful emission happen at consumption time.
  while (next_fire_ == sim::kCycleNever && rolled_until_ <= limit) {
    if (on_) {
      if (rng_.next_bernoulli(p_exit_on_)) on_ = false;
    } else {
      if (rng_.next_bernoulli(p_exit_off_)) on_ = true;
    }
    if (rng_.next_bernoulli(on_ ? p_on_packet_ : p_off_packet_)) next_fire_ = rolled_until_;
    ++rolled_until_;
  }
}

std::optional<noc::PacketRequest> AppTrafficSource::maybe_generate(sim::Cycle now) {
  roll_until(now);
  if (next_fire_ > now) return std::nullopt;  // covers kCycleNever
  next_fire_ = sim::kCycleNever;
  return noc::PacketRequest{pick_destination(), profile_.packet_length};
}

sim::Cycle AppTrafficSource::next_event_cycle(sim::Cycle now) {
  // With both emission probabilities at zero no packet can ever appear.
  // The skipped transition draws are unobservable then: the chain's state
  // only ever surfaces through emitted packets (in_burst() is a stepped
  // test hook, not a simulation output).
  if (p_on_packet_ <= 0.0 && p_off_packet_ <= 0.0) return sim::kCycleNever;
  if (next_fire_ == sim::kCycleNever) roll_until(now + kLookaheadCycles);
  if (next_fire_ != sim::kCycleNever) return std::max(now, next_fire_);
  return rolled_until_;
}

}  // namespace nbtinoc::traffic
