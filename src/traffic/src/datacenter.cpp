#include "nbtinoc/traffic/datacenter.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace nbtinoc::traffic {

std::string DatacenterProfile::describe() const {
  std::ostringstream out;
  out << "users=" << users_per_node << " rate=" << user_rate << " on=" << mean_on_cycles
      << " off=" << mean_off_cycles << " alpha=" << pareto_alpha
      << " pattern=" << to_string(pattern) << " hotspot_fraction=" << hotspot_fraction
      << " len=" << packet_length << " horizon=" << profile_horizon;
  return out.str();
}

void DatacenterProfile::validate() const {
  const auto fail = [](const std::string& msg) {
    throw std::invalid_argument("DatacenterProfile: " + msg);
  };
  if (users_per_node < 1) fail("users_per_node must be >= 1");
  if (!(user_rate > 0.0)) fail("user_rate must be > 0");
  if (!(mean_on_cycles >= 1.0)) fail("mean_on_cycles must be >= 1");
  if (!(mean_off_cycles >= 1.0)) fail("mean_off_cycles must be >= 1");
  if (!(pareto_alpha > 1.0)) fail("pareto_alpha must be > 1 (infinite-mean phases never settle)");
  if (!(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0))
    fail("hotspot_fraction must be in [0, 1]");
  if (packet_length < 1) fail("packet_length must be >= 1");
  if (profile_horizon < 1) fail("profile_horizon must be >= 1");
  const double peak = static_cast<double>(users_per_node) * user_rate / packet_length;
  if (peak > static_cast<double>(noc::kMaxGenerateBurst))
    fail("peak packet rate " + std::to_string(peak) +
         "/cycle (all users on) exceeds the NI burst drain capacity of " +
         std::to_string(noc::kMaxGenerateBurst) + "; lower user_rate or users_per_node");
}

DatacenterAggregateSource::DatacenterAggregateSource(noc::NodeId src,
                                                     const DatacenterProfile& profile, int width,
                                                     int height, noc::NodeId hotspot,
                                                     std::uint64_t seed)
    : src_(src),
      profile_(profile),
      pattern_(profile.pattern, width, height, hotspot, profile.hotspot_fraction),
      rng_(seed) {
  profile_.validate();
  // Consumes a deterministic prefix of rng_; the emission stream continues
  // from wherever the build leaves it, so the whole source is a pure
  // function of (profile, seed).
  build_activity_profile();
}

sim::Cycle DatacenterAggregateSource::pareto_cycles(double mean) {
  // Pareto with the requested mean: x_m = mean * (alpha - 1) / alpha, then
  // invert the CDF on one uniform. Durations are clamped to [1, horizon]:
  // anything past the horizon truncates identically when the profile is
  // marked, so the clamp is observationally free (and keeps the double ->
  // Cycle cast in range on extreme tail draws).
  const double a = profile_.pareto_alpha;
  const double xm = mean * (a - 1.0) / a;
  const double u = rng_.next_double();
  const double d = std::ceil(xm / std::pow(1.0 - u, 1.0 / a));
  const double clamped =
      std::min(static_cast<double>(profile_.profile_horizon), std::max(1.0, d));
  return static_cast<sim::Cycle>(clamped);
}

void DatacenterAggregateSource::build_activity_profile() {
  const sim::Cycle horizon = profile_.profile_horizon;
  std::vector<int> delta(static_cast<std::size_t>(horizon) + 1, 0);
  const double p_on =
      profile_.mean_on_cycles / (profile_.mean_on_cycles + profile_.mean_off_cycles);
  for (int user = 0; user < profile_.users_per_node; ++user) {
    // Stationary start: pick the phase by its long-run weight and enter it
    // mid-flight (a residual fraction of a fresh duration) so the
    // population does not phase-synchronize at cycle 0.
    bool on = rng_.next_bernoulli(p_on);
    sim::Cycle dur = std::max<sim::Cycle>(
        1, static_cast<sim::Cycle>(
               std::ceil(static_cast<double>(pareto_cycles(
                             on ? profile_.mean_on_cycles : profile_.mean_off_cycles)) *
                         rng_.next_double())));
    sim::Cycle t = 0;
    while (t < horizon) {
      if (on) {
        ++delta[static_cast<std::size_t>(t)];
        --delta[static_cast<std::size_t>(std::min(horizon, t + dur))];
      }
      t += dur;
      on = !on;
      dur = pareto_cycles(on ? profile_.mean_on_cycles : profile_.mean_off_cycles);
    }
  }
  seg_start_.clear();
  seg_lambda_.clear();
  seg_active_.clear();
  int active = 0;
  int prev = -1;
  for (sim::Cycle c = 0; c < horizon; ++c) {
    active += delta[static_cast<std::size_t>(c)];
    if (active != prev) {
      seg_start_.push_back(c);
      seg_active_.push_back(active);
      seg_lambda_.push_back(static_cast<double>(active) * profile_.user_rate /
                            profile_.packet_length);
      prev = active;
    }
  }
  max_lambda_ = *std::max_element(seg_lambda_.begin(), seg_lambda_.end());
}

double DatacenterAggregateSource::lambda_at(sim::Cycle cycle, sim::Cycle& span) {
  const sim::Cycle horizon = profile_.profile_horizon;
  const sim::Cycle pos = cycle % horizon;
  if (profile_pos_ == sim::kCycleNever || pos < profile_pos_) seg_idx_ = 0;
  while (seg_idx_ + 1 < seg_start_.size() && seg_start_[seg_idx_ + 1] <= pos) ++seg_idx_;
  profile_pos_ = pos;
  const sim::Cycle end_pos =
      seg_idx_ + 1 < seg_start_.size() ? seg_start_[seg_idx_ + 1] : horizon;
  span = end_pos - pos;
  return seg_lambda_[seg_idx_];
}

namespace {
// Same pre-roll horizon as SyntheticSource: far enough that one probe
// nearly always finds the next emission, bounded so a probe never runs
// away on a long idle stretch.
constexpr sim::Cycle kLookaheadCycles = 4096;
}  // namespace

void DatacenterAggregateSource::roll_until(sim::Cycle limit) {
  // Stepped draw order, exactly: one Bernoulli per cycle with lambda's
  // fractional part (integer part is draw-free), in cycle order, stopping
  // at the first nonzero batch. Destination draws are deferred to
  // consumption. Bernoulli(p <= 0) consumes no RNG state, so idle segments
  // are skipped whole — stream-equivalent, not just faster.
  if (max_lambda_ <= 0.0) {
    rolled_until_ = std::max(rolled_until_, limit + 1);
    return;
  }
  while (next_fire_ == sim::kCycleNever && rolled_until_ <= limit) {
    sim::Cycle span = 0;
    const double lambda = lambda_at(rolled_until_, span);
    if (lambda <= 0.0) {
      rolled_until_ = std::min(limit + 1, rolled_until_ + span);
      continue;
    }
    const double base = std::floor(lambda);
    const double frac = lambda - base;
    std::size_t k = static_cast<std::size_t>(base);
    if (frac > 0.0 && rng_.next_bernoulli(frac)) ++k;
    if (k > 0) {
      next_fire_ = rolled_until_;
      next_count_ = k;
    }
    ++rolled_until_;
  }
}

void DatacenterAggregateSource::refill(sim::Cycle now) {
  roll_until(now);
  while (next_fire_ != sim::kCycleNever && next_fire_ <= now) {
    pending_ += next_count_;
    next_fire_ = sim::kCycleNever;
    next_count_ = 0;
    roll_until(now);
  }
}

std::optional<noc::PacketRequest> DatacenterAggregateSource::maybe_generate(sim::Cycle now) {
  refill(now);
  if (pending_ == 0) return std::nullopt;
  --pending_;
  return noc::PacketRequest{pattern_.pick(src_, rng_), profile_.packet_length};
}

std::size_t DatacenterAggregateSource::generate_burst(sim::Cycle now, noc::PacketRequest* out,
                                                      std::size_t max) {
  refill(now);
  const std::size_t n = std::min(max, pending_);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = noc::PacketRequest{pattern_.pick(src_, rng_), profile_.packet_length};
  pending_ -= n;
  return n;
}

sim::Cycle DatacenterAggregateSource::next_event_cycle(sim::Cycle now) {
  // Undelivered batch packets keep the source hot at `now` so every
  // scheduler mode drains the backlog on the same cycles.
  if (pending_ > 0) return now;
  if (max_lambda_ <= 0.0) return sim::kCycleNever;
  if (next_fire_ == sim::kCycleNever) roll_until(now + kLookaheadCycles);
  if (next_fire_ != sim::kCycleNever) return std::max(now, next_fire_);
  // No emission in the rolled prefix: every cycle below rolled_until_ is
  // known packet-free, so it is a safe (conservative) horizon.
  return rolled_until_;
}

int DatacenterAggregateSource::active_sessions(sim::Cycle c) const {
  const sim::Cycle pos = c % profile_.profile_horizon;
  const auto it = std::upper_bound(seg_start_.begin(), seg_start_.end(), pos);
  return seg_active_[static_cast<std::size_t>(it - seg_start_.begin()) - 1];
}

double DatacenterAggregateSource::mean_flit_rate() const {
  const double p_on =
      profile_.mean_on_cycles / (profile_.mean_on_cycles + profile_.mean_off_cycles);
  return p_on * profile_.users_per_node * profile_.user_rate;
}

void install_datacenter_traffic(noc::Network& network, const DatacenterProfile& profile,
                                std::uint64_t base_seed, double rate_scale) {
  const auto& cfg = network.config();
  DatacenterProfile scaled = profile;
  scaled.user_rate *= rate_scale;
  scaled.packet_length = cfg.packet_length;
  const noc::NodeId hotspot = static_cast<noc::NodeId>(network.nodes() - 1);
  util::SplitMix64 seeder(base_seed);
  for (noc::NodeId id = 0; id < network.nodes(); ++id)
    network.set_traffic_source(id, std::make_unique<DatacenterAggregateSource>(
                                       id, scaled, cfg.width, cfg.height, hotspot, seeder.next()));
}

}  // namespace nbtinoc::traffic
