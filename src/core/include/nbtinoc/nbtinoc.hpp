#pragma once
// Umbrella header for the nbtinoc library: a reproduction of
// "Sensor-wise methodology to face NBTI stress of NoC buffers"
// (Zoni & Fornaciari, DATE 2013).
//
// Quick tour:
//   sim::Scenario            — experiment setup (Table I)
//   noc::Network             — cycle-accurate 2D-mesh VC-router NoC
//   traffic::*               — synthetic patterns + application models
//   nbti::NbtiModel          — long-term Vth-shift closed form (Eq. 1)
//   nbti::NbtiSensorBank     — per-buffer degradation sensors
//   core::PolicyKind         — baseline / rr-no-sensor / sensor-wise[-no-traffic]
//   core::run_experiment     — scenario + policy + workload -> duty cycles
//   core::SweepRunner        — parallel grid sweeps over run_experiment
//   core::LifetimeEngine     — hierarchical (measure/extrapolate) aging loop
//   core::run_fleet          — sharded Monte-Carlo fleet reliability
//   power::AreaModel         — ORION-style overhead analysis (paper §III-D)

#include "nbtinoc/core/controller.hpp"
#include "nbtinoc/core/experiment.hpp"
#include "nbtinoc/core/fleet.hpp"
#include "nbtinoc/core/lifetime.hpp"
#include "nbtinoc/core/lifetime_engine.hpp"
#include "nbtinoc/core/policy.hpp"
#include "nbtinoc/core/sweep.hpp"
#include "nbtinoc/nbti/aging.hpp"
#include "nbtinoc/nbti/duty_cycle.hpp"
#include "nbtinoc/nbti/model.hpp"
#include "nbtinoc/nbti/process_variation.hpp"
#include "nbtinoc/nbti/sensor.hpp"
#include "nbtinoc/noc/network.hpp"
#include "nbtinoc/power/area_model.hpp"
#include "nbtinoc/power/power_model.hpp"
#include "nbtinoc/sim/scenario.hpp"
#include "nbtinoc/traffic/benchmarks.hpp"
#include "nbtinoc/traffic/datacenter.hpp"
#include "nbtinoc/traffic/synthetic.hpp"
#include "nbtinoc/traffic/trace.hpp"
