#pragma once
// PolicyGateController: the host that wires the paper's machinery into a
// network — per-input-port NBTI sensor banks (downstream side), the pre-VA
// policy algorithms (upstream side), and the process-variation Vth sampling
// that both share.

#include <cstdint>
#include <map>
#include <vector>

#include "nbtinoc/core/policy.hpp"
#include "nbtinoc/nbti/model.hpp"
#include "nbtinoc/nbti/process_variation.hpp"
#include "nbtinoc/nbti/sensor.hpp"
#include "nbtinoc/noc/network.hpp"
#include "nbtinoc/sim/snapshot.hpp"

namespace nbtinoc::core {

/// Per-port sensor health tracking: when fault injection is active, the
/// controller watches every port's Down_Up reports and demotes ports whose
/// sensors stop making sense. A quarantined port runs the rr-no-sensor
/// fallback (still gates, no longer trusts readings) until its sensors
/// behave again — the graceful half of graceful degradation.
struct HealthConfig {
  /// Plausibility window for a measured Vth (volts). Readings outside it
  /// are treated as sensor failure evidence, not as data. The defaults
  /// bracket any reachable {PV sample + NBTI shift + noise} in this model.
  double plausible_min_v = 0.05;
  double plausible_max_v = 0.60;
  /// Consecutive epochs with an implausible reading before quarantine.
  int implausible_epochs_to_quarantine = 2;
  /// Consecutive epochs without a delivered Down_Up report before the
  /// staleness watchdog quarantines the port.
  int staleness_epochs = 4;
  /// Consecutive healthy epochs (delivered report, all readings plausible)
  /// before a quarantined port is trusted again.
  int healthy_epochs_to_recover = 4;
};

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kSensorWise;
  /// Cycles between advances of the rr-no-sensor active candidate
  /// ("changed cyclically on a time basis").
  sim::Cycle rr_rotation_period = 1;
  /// Pre-VA decisions are recomputed only every this-many cycles and held
  /// in between (hysteresis). 1 reproduces the paper's per-cycle decision;
  /// larger values cut header-PMOS gating transitions at the cost of
  /// occasionally parking the awake VC on a now-busy buffer (latency).
  sim::Cycle decision_period = 1;
  nbti::SensorConfig sensor;
  HealthConfig health;

  /// Throws std::invalid_argument with an actionable message on
  /// configurations that would divide by zero or stall the machinery
  /// (zero rotation/decision periods, zero-length sensor epochs).
  void validate() const;
};

/// Samples one initial Vth per gateable buffer (VC bank entry, or pool slot
/// under the shared organization — same count either way) for every existing
/// input port of a network with the given config. The sampling order is fixed (router id
/// ascending, then port N,S,E,W,L), so the same seed always yields the same
/// silicon — the paper's requirement that every policy sees identical Vth
/// vectors on the same {architecture, traffic} scenario.
std::map<noc::PortKey, std::vector<double>> sample_network_vths(const noc::NocConfig& config,
                                                                const nbti::PvConfig& pv,
                                                                std::uint64_t seed);

class PolicyGateController final : public noc::IGateController {
 public:
  /// `model` must outlive the controller: every per-port sensor bank keeps
  /// a pointer into it. The rvalue overloads are deleted so a temporary
  /// (e.g. `NbtiModel::calibrated(...)` inline) is a compile error instead
  /// of a dangling pointer.
  PolicyGateController(noc::Network& network, PolicyConfig config, const nbti::NbtiModel& model,
                       nbti::OperatingPoint op, const nbti::PvConfig& pv, std::uint64_t pv_seed);
  PolicyGateController(noc::Network& network, PolicyConfig config, nbti::NbtiModel&& model,
                       nbti::OperatingPoint op, const nbti::PvConfig& pv,
                       std::uint64_t pv_seed) = delete;

  /// Builds the controller on explicitly provided per-port Vth vectors
  /// (e.g. partially aged silicon in a lifetime study) instead of sampling
  /// fresh process variation. The map must cover every existing input port.
  PolicyGateController(noc::Network& network, PolicyConfig config, const nbti::NbtiModel& model,
                       nbti::OperatingPoint op,
                       std::map<noc::PortKey, std::vector<double>> initial_vths,
                       std::uint64_t noise_seed = 0x5e7502ULL);
  PolicyGateController(noc::Network& network, PolicyConfig config, nbti::NbtiModel&& model,
                       nbti::OperatingPoint op,
                       std::map<noc::PortKey, std::vector<double>> initial_vths,
                       std::uint64_t noise_seed = 0x5e7502ULL) = delete;

  // IGateController
  noc::GateCommand decide(const noc::PortKey& key, const noc::OutVcStateView& view,
                          bool new_traffic, sim::Cycle now) override;
  void post_cycle(sim::Cycle now) override;
  /// Fast-forward horizon: with a fault injector installed the fault
  /// processes draw RNG every cycle, so the horizon is pinned to `now`
  /// (fast-forward effectively disabled); otherwise the only autonomous
  /// events are the per-port sensor refresh epochs, so the horizon is the
  /// earliest next_refresh_cycle() across ports.
  sim::Cycle next_event_cycle(sim::Cycle now) override;
  const char* name() const override;

  /// Installs this controller on the network it was built for.
  void attach() { network_->set_gate_controller(this); }

  /// Routes every Down_Up refresh through the injector's sensor fault
  /// process and arms the per-port health watchdogs (non-owning; nullptr
  /// to detach). With no injector installed the controller's behavior is
  /// bit-identical to a build without this subsystem.
  void set_fault_injector(sim::FaultInjector* injector) { injector_ = injector; }
  sim::FaultInjector* fault_injector() { return injector_; }

  /// True while the port's sensors are distrusted and the rr fallback runs.
  bool quarantined(const noc::PortKey& key) const { return ports_.at(key).quarantined; }
  std::size_t quarantined_ports() const;
  /// The reading the policy actually acts on (corrupted + possibly stale
  /// under faults; equals sensors().measured_vth otherwise).
  double effective_vth(const noc::PortKey& key, int vc) const;

  /// Checkpoint of the controller's dynamic state: per-port sensor banks
  /// (noise RNG included), last-delivered effective readings, health-ladder
  /// counters, the hysteresis cache and the post-cycle fence. Initial Vth
  /// vectors and stat handles are reconstructed by the constructor, so the
  /// loading controller must be built from the same scenario.
  void save(sim::SnapshotWriter& w) const;
  void load(sim::SnapshotReader& r);

  PolicyKind kind() const { return config_.kind; }
  const nbti::NbtiSensorBank& sensors(const noc::PortKey& key) const;
  const std::vector<double>& initial_vths(const noc::PortKey& key) const;
  /// Most degraded VC over the whole port (reporting).
  int most_degraded(const noc::PortKey& key) const;
  /// Most degraded VC within the view's subrange, in view-local coordinates
  /// (what the per-vnet Down_Up comparator reports).
  int local_most_degraded(const noc::PortKey& key, const noc::OutVcStateView& view) const;

 private:
  struct PortContext {
    std::vector<double> initial_vths;
    nbti::NbtiSensorBank sensors;
    /// What the upstream router believes the readings are: the last
    /// *delivered* (possibly corrupted) Down_Up report. Mirrors
    /// sensors.measured_vth exactly while no injector is installed.
    std::vector<double> effective_vths;
    bool quarantined = false;
    int epochs_since_report = 0;  ///< staleness watchdog input
    int implausible_streak = 0;   ///< consecutive epochs with bad readings
    int healthy_streak = 0;       ///< consecutive clean epochs (recovery)
  };

  noc::GateCommand compute(const noc::PortKey& key, const noc::OutVcStateView& view,
                           bool new_traffic, sim::Cycle now);
  /// most_degraded_in over effective (fault-corrupted) readings, same
  /// lowest-index tie-break as the sensor bank's comparator tree.
  int effective_local_most_degraded(const PortContext& ctx, const noc::OutVcStateView& view) const;
  /// One Down_Up refresh epoch of `key` under the installed injector:
  /// fault-process step, report delivery/corruption, health bookkeeping.
  void faulted_epoch(const noc::PortKey& key, PortContext& ctx);

  noc::Network* network_;
  PolicyConfig config_;
  std::string name_;
  /// Shared (DAMQ) organization: sensor banks index pool slots instead of
  /// VC bank entries, slot policies dispatch, and the VC-indexed hysteresis
  /// cache is bypassed.
  bool shared_ = false;
  std::map<noc::PortKey, PortContext> ports_;
  sim::FaultInjector* injector_ = nullptr;

  /// Earliest sensor-refresh epoch across ports: fault-free post_cycle
  /// calls before this cycle are provable no-ops and return in O(1) — the
  /// controller-side epoch fence of the event-driven schedulers.
  sim::Cycle post_cycle_fence_ = 0;

  // Interned stat handles (fault.quarantined_port_cycles is bumped every
  // cycle per quarantined port — a hot-path site under fault injection).
  sim::CounterHandle h_quarantined_cycles_;
  sim::CounterHandle h_quarantines_;
  sim::CounterHandle h_recoveries_;

  /// Scratch for the sensor-rank degradation vector (sized once; the
  /// per-decision fill must not allocate).
  std::vector<double> degradation_scratch_;

  /// Hysteresis cache, keyed by (port, vnet subrange start).
  struct HeldDecision {
    noc::GateCommand command;
    sim::Cycle held_until = 0;
    bool valid = false;
  };
  std::map<std::pair<noc::PortKey, int>, HeldDecision> held_;
};

}  // namespace nbtinoc::core
