#pragma once
// Multi-year lifetime study: closes the loop the single-shot experiment
// leaves open.
//
// run_experiment measures duty cycles on *fresh* silicon; over months of
// operation, however, the accumulated Vth shift changes the sensor ranking,
// the policies react to the new most-degraded VC, and wear redistributes.
// The lifetime study alternates (simulate an epoch's traffic -> measure
// per-buffer duty -> advance every buffer's Vth by the epoch length via the
// equivalent-age method -> re-seed the sensors with the aged silicon) and
// records the trajectory. This is the experiment the paper's methodology is
// ultimately for: which policy keeps the worst buffer inside its Vth budget
// the longest.

#include <map>
#include <vector>

#include "nbtinoc/core/experiment.hpp"

namespace nbtinoc::core {

struct LifetimeOptions {
  int epochs = 12;
  double years_per_epoch = 0.25;          ///< 12 x 0.25 = a 3-year study
  sim::Cycle measure_cycles_per_epoch = 60'000;
  RunnerOptions runner;                   ///< policy/sensor/nbti knobs
};

/// State of the sampled port after one epoch.
struct LifetimeEpoch {
  double years_elapsed = 0.0;
  int most_degraded = 0;                 ///< per the aged silicon
  std::vector<double> vth_v;             ///< absolute Vth per VC
  std::vector<double> duty_percent;      ///< duty measured during the epoch
};

struct LifetimeResult {
  noc::PortKey sampled_port;
  std::vector<LifetimeEpoch> epochs;
  /// Worst / best final Vth across the sampled port's VCs.
  double final_worst_vth_v = 0.0;
  double final_spread_v = 0.0;
  /// How many epochs changed the most-degraded VC (wear migration).
  int md_changes = 0;

  /// Full final silicon (for chaining studies).
  std::map<noc::PortKey, std::vector<double>> final_vths;
};

/// Runs the epoch loop. Traffic is re-seeded per epoch (distinct stream,
/// same statistics); the PV seed fixes the fresh silicon at year 0.
LifetimeResult run_lifetime_study(sim::Scenario scenario, PolicyKind policy,
                                  const Workload& workload, noc::PortKey sampled_port,
                                  const LifetimeOptions& options = {});

}  // namespace nbtinoc::core
