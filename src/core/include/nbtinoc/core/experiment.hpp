#pragma once
// Experiment runner: scenario + policy + workload -> duty cycles and Vth
// projections. This is the top of the public API; the benches and examples
// are thin wrappers over it.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nbtinoc/core/controller.hpp"
#include "nbtinoc/core/policy.hpp"
#include "nbtinoc/nbti/aging.hpp"
#include "nbtinoc/power/power_model.hpp"
#include "nbtinoc/sim/scenario.hpp"
#include "nbtinoc/traffic/benchmarks.hpp"
#include "nbtinoc/traffic/datacenter.hpp"
#include "nbtinoc/traffic/patterns.hpp"
#include "nbtinoc/traffic/trace.hpp"

namespace nbtinoc::core {

/// Workload description: a synthetic pattern at the scenario's injection
/// rate (Tables II/III), a benchmark mix (Table IV), a recorded NBTITRACE
/// replay, or a datacenter aggregate population.
struct Workload {
  enum class Kind { kSynthetic, kBenchmarkMix, kTrace, kDatacenter } kind = Kind::kSynthetic;
  traffic::PatternKind pattern = traffic::PatternKind::kUniform;
  traffic::BenchmarkMix mix;       ///< used when kind == kBenchmarkMix
  /// kTrace: shared read-only mapping replayed zero-copy; every run, sweep
  /// worker and fleet shard holding this Workload shares the one mapping.
  std::shared_ptr<const traffic::TraceFile> trace;
  traffic::DatacenterProfile datacenter;  ///< used when kind == kDatacenter
  std::uint64_t seed_salt = 0;     ///< extra salt for per-iteration traffic streams

  static Workload synthetic(traffic::PatternKind pattern = traffic::PatternKind::kUniform);
  static Workload benchmark_mix(traffic::BenchmarkMix mix, std::uint64_t seed_salt = 0);
  /// Replay of a captured trace. The runner validates the trace's node and
  /// vnet counts against the scenario before installing it (errors quote
  /// the trace digest); trace records are draw-free, so seed_salt does not
  /// perturb the offered load (it still salts the digest).
  static Workload trace_replay(std::shared_ptr<const traffic::TraceFile> trace);
  /// Heavy-tailed on/off user aggregate (DatacenterAggregateSource).
  static Workload datacenter_aggregate(traffic::DatacenterProfile profile,
                                       std::uint64_t seed_salt = 0);
};

/// Per-input-port measurement.
struct PortResult {
  std::vector<double> duty_percent;   ///< NBTI-duty-cycle per VC
  std::vector<double> initial_vth_v;  ///< PV-sampled silicon
  std::vector<std::uint64_t> gate_transitions;  ///< header-PMOS switch count per VC
  int most_degraded = 0;              ///< sensor-reported MD VC
};

struct RunResult {
  sim::Scenario scenario;
  PolicyKind policy = PolicyKind::kBaseline;
  std::map<noc::PortKey, PortResult> ports;

  /// "fault.*" counters (measurement window, like every other counter).
  /// Empty when no fault injection was enabled; to_json omits it then, so
  /// zero-rate output is byte-identical to a build without the subsystem.
  std::map<std::string, std::uint64_t> fault_counters;
  /// Invariant violations found when RunnerOptions::check_invariants was
  /// on (empty otherwise — and hopefully then too).
  std::vector<std::string> invariant_violations;

  // Counters below cover the measurement window only (warmup excluded).
  std::uint64_t packets_offered = 0;  ///< policy-independent (same traffic seed)
  std::uint64_t flits_injected = 0;
  std::uint64_t flits_ejected = 0;
  std::uint64_t packets_ejected = 0;
  std::uint64_t flits_forwarded = 0;      ///< router-to-router link traversals
  std::uint64_t flits_ejected_router = 0; ///< router-to-NI ejections
  std::uint64_t va_grants = 0;            ///< router VA grants (+ NI grants separately)
  std::uint64_t ni_va_grants = 0;
  std::vector<std::uint64_t> router_flits_out;  ///< per-router movement counts
  std::uint64_t total_gate_transitions = 0;     ///< whole-NoC header-PMOS switches
  double avg_packet_latency = 0.0;
  double throughput_flits_per_cycle_per_node = 0.0;

  const PortResult& port(noc::NodeId node, noc::Dir dir) const;
  /// Duty (percent) of the most degraded VC of the given port.
  double md_duty(noc::NodeId node, noc::Dir dir) const;
};

struct RunnerOptions {
  nbti::NbtiParams nbti;          ///< model parameters (calibrated internally)
  PolicyConfig policy;            ///< kind is overridden per run() call
  bool paper_scale = false;       ///< 30e6-cycle runs instead of scaled ones
  /// Non-empty: use these per-port Vth vectors (e.g. aged silicon from a
  /// lifetime study) instead of sampling fresh process variation.
  std::map<noc::PortKey, std::vector<double>> initial_vths;
  /// Control-path fault storm. All-zero (the default) is a provable no-op:
  /// no injector is even constructed, so results are byte-identical to a
  /// faultless build. The injector seed derives from the scenario and
  /// faults.seed_salt alone — deterministic at any sweep worker count.
  sim::FaultPlan faults;
  /// Run the whole-network InvariantChecker every cycle (no flit in a gated
  /// buffer, credit conservation, no flit loss, no deadlock). Violations
  /// are reported in RunResult::invariant_violations. Roughly doubles run
  /// time; meant for tests and fault studies, not duty-cycle production.
  bool check_invariants = false;
  /// Event-horizon fast-forwarding (Network::set_fast_forward): skip
  /// provably quiescent stretches instead of stepping them. Results are
  /// bit-identical either way (pinned by the golden/equivalence tests);
  /// turn it off only to time or debug the literal per-cycle path. Ignored
  /// (forced off) when check_invariants is set, which steps every cycle by
  /// construction.
  bool fast_forward = true;
  /// Explicit scheduler selection. When set it wins over `fast_forward`
  /// (which remains as the legacy two-state knob): kStepped / kFastForward /
  /// kActiveSet. Unlike fast-forward, the active-set scheduler composes
  /// with check_invariants — the checker then also audits that every parked
  /// component is provably idle.
  std::optional<noc::SchedulerMode> scheduler;

  // --- checkpoint/restore (ARCHITECTURE.md §13) -------------------------------
  /// Pause the run at this absolute cycle (warmup and measurement share one
  /// clock: 0 <= snapshot_at <= warmup + measure) and serialize the complete
  /// simulation into *snapshot_out (framed bytes, see sim/snapshot.hpp).
  /// The run then continues to completion, so the returned RunResult is
  /// bit-identical to a run without the snapshot. Incompatible with
  /// check_invariants (the per-cycle checker carries no snapshot state).
  std::optional<sim::Cycle> snapshot_at;
  std::string* snapshot_out = nullptr;
  /// Bytes of a snapshot previously produced by snapshot_at under the same
  /// scenario / policy / workload / fault configuration. The runner rebuilds
  /// the identical object graph, restores the saved state and runs only the
  /// remaining cycles — bit-identical to the uninterrupted run under every
  /// scheduler mode. Version or configuration mismatches throw
  /// sim::SnapshotError naming both digests. Incompatible with
  /// check_invariants and with snapshot_at.
  std::optional<std::string> resume_from;

  /// Non-null: record the run's offered load into this trace (the network's
  /// ITraceSink — every packet each source offers, before the NI's
  /// self-traffic/unroutable filters, warmup included). Observation only:
  /// it consumes no RNG and perturbs nothing, so the capturing run's result
  /// is bit-identical to an uncaptured run — and replaying the capture
  /// (Workload::trace_replay over traffic::TraceFile::from_trace) reproduces
  /// that same result bit for bit. Incompatible with resume_from: a resumed
  /// run cannot observe the cycles that ran before the snapshot, so the
  /// capture would silently be a suffix.
  traffic::Trace* capture_trace = nullptr;
};

/// Runs one scenario under one policy. PV seed and traffic seed derive from
/// the scenario alone, so different policies see identical silicon and an
/// identical offered load.
RunResult run_experiment(sim::Scenario scenario, PolicyKind policy, const Workload& workload,
                         const RunnerOptions& options = {});

/// Serializes a run to JSON (scenario, per-port duty cycles / initial Vth /
/// MD VC, network counters) for downstream plotting and analysis tools.
std::string to_json(const RunResult& result);

/// Assembles the energy-model inputs from a run: flit-movement counters plus
/// the powered/gated buffer-cycle totals summed from every port's duty
/// cycles. Allocator grants count VA (router + NI) and SA (= buffer reads).
power::NocActivity activity_of(const RunResult& result);

/// Builds the operating point / PV config / calibrated model a scenario
/// implies — exposed for benches that post-process duty cycles via Eq. 1.
nbti::OperatingPoint operating_point_of(const sim::Scenario& scenario);
nbti::PvConfig pv_config_of(const sim::Scenario& scenario);
nbti::NbtiModel calibrated_model_of(const sim::Scenario& scenario,
                                    const nbti::NbtiParams& params = {});

}  // namespace nbtinoc::core
