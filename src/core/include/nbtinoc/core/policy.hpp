#pragma once
// The NBTI recovery policies (the paper's contribution).
//
// All three NBTI-aware policies run in the *upstream* pre-VA stage of each
// router pair and emit the Up_Down (enable, VC-ID) command; they differ in
// what information they consume:
//
//   rr_no_sensor (Algorithm 1)       traffic info, no sensors: rotates the
//                                    kept-awake candidate on a time basis —
//                                    the best sensor-less strategy.
//   sensor_wise_no_traffic           sensors only: always keeps one idle VC
//                                    awake (it cannot know that no packet is
//                                    coming), most-degraded gated first.
//   sensor_wise (Algorithm 2)        sensors + traffic info: gates *all*
//                                    idle VCs when no new packet waits
//                                    upstream, else keeps exactly one awake
//                                    — never the most degraded if avoidable.
//
// `baseline` is the non-NBTI-aware reference: no gating at all.

#include <string>
#include <vector>

#include "nbtinoc/noc/gate.hpp"
#include "nbtinoc/noc/shared_pool.hpp"
#include "nbtinoc/sim/clock.hpp"

namespace nbtinoc::core {

enum class PolicyKind {
  kBaseline,
  kRrNoSensor,
  kSensorWiseNoTraffic,
  kSensorWise,
  /// Extension beyond the paper: full-ranking wear leveling. Where
  /// Algorithm 2 only prioritizes the *most* degraded VC and keeps an
  /// index-ordered survivor awake, sensor-rank keeps the *least* degraded
  /// idle VC awake, steering new packets onto the healthiest buffer and
  /// equalizing wear across the whole bank.
  kSensorRank,
  /// Slot-granularity sensor-wise policy for the shared (DAMQ) buffer
  /// organization: the per-slot sensor bank ranks *pool slots*, the most
  /// degraded Free slot recovers first, and under new traffic the least
  /// degraded Gated slot wakes back up when headroom runs short. Emits
  /// slot-form commands; requires buffer_org = shared.
  kSensorWiseSlotMd,
  /// Slot-granularity sensor-less baseline: rotates the gate/wake scan
  /// start across the pool on a time basis (the rr-no-sensor analogue for
  /// shared pools). Requires buffer_org = shared.
  kRrSlot,
};

std::string to_string(PolicyKind kind);
PolicyKind parse_policy(const std::string& name);

/// Algorithm 1 — the round-robin sensor-less pre-VA stage. `candidate` is
/// the time-rotated active-candidate VC identifier.
noc::GateCommand rr_no_sensor_decide(const noc::OutVcStateView& view, int candidate,
                                     bool new_traffic);

/// Algorithm 2 — the sensor-wise pre-VA stage. `most_degraded` comes from
/// the downstream sensor bank over the Down_Up link. Pass
/// `bool_traffic = true` unconditionally to obtain the
/// sensor-wise-no-traffic variant.
noc::GateCommand sensor_wise_decide(const noc::OutVcStateView& view, int most_degraded,
                                    bool bool_traffic);

/// Wear-leveling variant (extension): `degradation[i]` is the sensor
/// reading of the view-local VC i; the least degraded idle VC is kept awake
/// when new traffic needs one, everything else recovers.
noc::GateCommand sensor_rank_decide(const noc::OutVcStateView& view,
                                    const std::vector<double>& degradation, bool bool_traffic);

/// Slot-granularity sensor-wise pre-VA stage (shared organization, one
/// decision per port per cycle). `degradation[s]` is the sensor reading of
/// pool slot s. At most one slot is gated and one woken per command:
///   - credit starvation (pool.credit_starved(): a VC exhausted its
///     reserve with no shared headroom left), or new traffic with free
///     slots running short (< one per VC): wake the *least* degraded Gated
///     slot (it has recovered the longest);
///   - surplus free slots (> one per VC) or no traffic at all, provided no
///     reserve-exhausted VC would be left without a slot of send headroom:
///     gate the *most* degraded Free slot, M* permitting
///     (pool.can_gate()), driving the pool toward the all-shared-slots-
///     gated fixed point.
/// Under sustained traffic the two rules keep the shared region a slot or
/// two above the outstanding charges, so capacity tracks demand instead of
/// pinning upstream on the per-VC reserved stop-and-wait path. At the
/// no-traffic fixed point (charges drained, free slots == reservations)
/// the returned command is a no-op, which is what lets the event-driven
/// schedulers skip the decide call.
noc::GateCommand sensor_wise_slot_decide(const noc::SharedBufferPool& pool,
                                         const std::vector<double>& degradation,
                                         bool new_traffic);

/// Slot-granularity sensor-less baseline: same wake/gate conditions as
/// sensor_wise_slot_decide but the victim/wake slot is the first match
/// scanning circularly from the time-rotated `candidate` slot.
noc::GateCommand rr_slot_decide(const noc::SharedBufferPool& pool, int candidate,
                                bool new_traffic);

}  // namespace nbtinoc::core
