#pragma once
// Sharded Monte-Carlo fleet reliability: thousands of process-variation
// chip instances × policies × workloads, reduced to time-to-failure
// distributions per policy.
//
// Each fleet point is one chip (an independent PV silicon sample) running
// one policy under one workload: a cycle-accurate run_experiment measures
// every buffer's duty cycle, then the closed-form reaction–diffusion model
// (AgingForecaster::lifetime_years) converts {initial Vth, duty} into the
// years until that buffer's ΔVth crosses the budget. The chip's failure
// time is the order statistic at `failure_fraction` of its VC population —
// the paper-level question "when has 1% of this chip's VC buffers drifted
// out of spec?".
//
// Determinism contract (pinned by fleet_test): every point's seeds derive
// from {scenario, chip index} alone, points execute through SweepRunner,
// and reports reduce in point order — so the merged JSON/CSV is
// byte-identical for any --workers value and any shard split. Shard
// partials carry failure times as exact IEEE bit patterns (hex), so a
// merge loses nothing to decimal round-tripping.

#include <cstdint>
#include <string>
#include <vector>

#include "nbtinoc/core/experiment.hpp"

namespace nbtinoc::core {

struct LabeledWorkload {
  std::string label;
  Workload workload;
};

struct FleetSpec {
  sim::Scenario scenario;
  std::vector<PolicyKind> policies{PolicyKind::kBaseline, PolicyKind::kSensorWise};
  std::vector<LabeledWorkload> workloads{{"uniform", {}}};
  int chips = 64;                 ///< PV instances per (policy, workload) group
  double dvth_budget_v = 0.03;    ///< per-buffer ΔVth failure budget
  double failure_fraction = 0.01; ///< chip fails when this fraction of VCs is over budget
  double max_years = 30.0;        ///< forecast horizon (chips surviving it report it)
  RunnerOptions runner;

  /// Point-enumeration order: policy-major, then workload, then chip.
  std::size_t total_points() const {
    return policies.size() * workloads.size() * static_cast<std::size_t>(chips);
  }

  void validate() const;
};

/// PV seed of one chip instance: a SplitMix64 stream over the scenario's
/// pv_seed, one draw per chip — independent silicon per chip, identical
/// silicon for the same chip index in every shard/worker layout.
std::uint64_t fleet_chip_seed(const sim::Scenario& scenario, int chip);

/// One completed fleet point.
struct FleetPointOutcome {
  std::size_t index = 0;       ///< global enumeration index
  int chip = 0;
  std::size_t policy_index = 0;
  std::size_t workload_index = 0;
  double failure_years = 0.0;  ///< time to failure_fraction of VCs over budget
  double worst_duty_percent = 0.0;  ///< highest VC duty measured on this chip
};

/// The outcomes of one shard (point indices with index % shard_count ==
/// shard_index), plus the spec digest they were computed under.
struct FleetShardResult {
  std::string digest;
  std::size_t total_points = 0;
  int shard_index = 0;
  int shard_count = 1;
  std::vector<FleetPointOutcome> outcomes;  ///< ascending global index
};

/// Canonical textual encoding of everything that determines fleet results;
/// embedded in shard partials and checked at merge.
std::string fleet_digest(const FleetSpec& spec);

/// Runs one shard of the fleet through SweepRunner (workers as given; 0 =
/// hardware concurrency). shard_index/shard_count = 0/1 runs everything.
FleetShardResult run_fleet_shard(const FleetSpec& spec, int shard_index, int shard_count,
                                 unsigned workers);

/// Self-describing shard partial (text; doubles as hex bit patterns).
std::string serialize_fleet_shard(const FleetShardResult& shard);
/// Parses a partial, throwing std::runtime_error with the offending line
/// on malformed input.
FleetShardResult parse_fleet_shard(const std::string& text);

/// Per-(policy, workload) failure-time distribution.
struct FleetGroupReport {
  std::size_t policy_index = 0;
  std::size_t workload_index = 0;
  std::vector<double> failure_years;  ///< ascending
  double mean_years = 0.0;
  double min_years = 0.0;
  double p10_years = 0.0;
  double median_years = 0.0;
  double p90_years = 0.0;
  double max_years = 0.0;
};

class FleetReport {
 public:
  FleetReport(const FleetSpec& spec, std::vector<FleetGroupReport> groups);

  const std::vector<FleetGroupReport>& groups() const { return groups_; }
  std::string to_json() const;
  std::string to_csv() const;

 private:
  FleetSpec spec_;
  std::vector<FleetGroupReport> groups_;
};

/// Validates shard partials against the spec (digest match, exact point
/// coverage: every index once, no duplicates, no strays) and reduces them
/// to the per-group report. Order-insensitive in its inputs; the output is
/// a pure function of the spec, so merged shards match a 0/1 run exactly.
FleetReport merge_fleet_shards(const FleetSpec& spec, std::vector<FleetShardResult> shards);

/// Convenience: run everything in-process (equivalent to one 0/1 shard +
/// merge).
FleetReport run_fleet(const FleetSpec& spec, unsigned workers = 0);

}  // namespace nbtinoc::core
