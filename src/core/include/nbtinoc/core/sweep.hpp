#pragma once
// Parallel experiment sweep engine. Every result in the paper is a sweep —
// {mesh size x VC count x injection rate x pattern x policy} grids executed
// one run_experiment() call at a time. SweepRunner shards such a grid across
// a fixed-size thread pool while preserving the paper's determinism
// contract: each point's PV and traffic seeds derive from its Scenario
// alone (never from the worker, schedule, or completion order), so the
// result grid is bit-identical for any worker count — a pool of size 1
// produces exactly the serial path's bytes.
//
// Results come back in *grid order* (the order points were added), each
// with its own wall-clock time, and export to JSON/CSV mirroring
// core::to_json for downstream plotting.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "nbtinoc/core/experiment.hpp"

namespace nbtinoc::core {

/// One cell of the sweep grid: a full experiment specification.
struct SweepPoint {
  sim::Scenario scenario;
  PolicyKind policy = PolicyKind::kBaseline;
  Workload workload;
  std::string label;  ///< free-form tag carried through to the result/export
  /// Per-point RunnerOptions, overriding SweepOptions::runner for this cell
  /// only — how a grid sweeps runner-level knobs (sensor noise, fault
  /// rates) alongside scenario knobs. Determinism is unaffected: the
  /// override is part of the point, not of the schedule.
  std::optional<RunnerOptions> runner;

  /// "scenario-name/policy[/label]" — the default row identifier.
  std::string describe() const;
};

/// One completed cell: the point, its RunResult, and how long it took.
struct SweepPointResult {
  SweepPoint point;
  RunResult result;
  double wall_seconds = 0.0;  ///< this point's own wall-clock time
};

/// Progress snapshot handed to the callback after each point completes.
/// Callbacks are serialized (never concurrent) but arrive in *completion*
/// order, which under >1 worker is not grid order.
struct SweepProgress {
  std::size_t completed = 0;     ///< points finished so far
  std::size_t total = 0;         ///< grid size
  std::size_t point_index = 0;   ///< grid index of the point that just finished
  double point_seconds = 0.0;    ///< wall time of that point
  double elapsed_seconds = 0.0;  ///< since run() started
  double eta_seconds = 0.0;      ///< naive linear estimate of time remaining
  const SweepPoint* point = nullptr;  ///< the point that just finished
};

struct SweepOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). A value of 1
  /// runs every point inline on the calling thread (no pool), the reference
  /// serial path.
  unsigned workers = 0;
  RunnerOptions runner;  ///< forwarded to every run_experiment call
  /// Invoked (serialized, under a lock) after each point completes.
  std::function<void(const SweepProgress&)> on_progress;
};

/// The completed grid, in the exact order points were added.
class SweepResult {
 public:
  explicit SweepResult(std::vector<SweepPointResult> points);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const SweepPointResult& at(std::size_t i) const { return points_.at(i); }
  const SweepPointResult& operator[](std::size_t i) const { return points_[i]; }
  auto begin() const { return points_.begin(); }
  auto end() const { return points_.end(); }

  /// Sum of per-point wall times (= CPU-ish cost; wall time of the whole
  /// sweep is lower under >1 worker).
  double total_point_seconds() const;

  /// JSON document: {"points": [{"label", "wall_seconds", "result": <core::to_json>}...]}.
  std::string to_json() const;

  /// One CSV row per point: identity, headline counters, wall time.
  /// Mirrors the fields of core::to_json's "counters" block.
  std::string to_csv() const;
  void write_csv(const std::string& path) const;
  void write_json(const std::string& path) const;

 private:
  std::vector<SweepPointResult> points_;
};

/// Coarse task fan-out on the sweep pool idiom: runs fn(0), ..., fn(count-1)
/// across up to `workers` threads (0 = hardware concurrency), inline on the
/// calling thread when one worker suffices — the reference serial path, with
/// no pool and no locks. fn must be safe to call concurrently for distinct
/// indices and should write its output into a per-index slot; determinism is
/// then automatic because slot i never depends on the schedule. The first
/// exception thrown by any index is rethrown after all workers finish.
///
/// This is for work that is *not* one run_experiment per cell (e.g. a
/// multi-epoch lifetime study per policy); plain experiment grids should use
/// SweepRunner, which also tracks per-point wall time and exports.
void parallel_for(std::size_t count, unsigned workers,
                  const std::function<void(std::size_t)>& fn);

/// Builds a grid of experiment points and executes them on a thread pool.
///
///   SweepRunner sweep(options);
///   for (...) sweep.add(scenario, policy, workload);
///   SweepResult r = sweep.run();   // r[i] corresponds to the i-th add()
///
/// Determinism guarantee: SweepResult content (everything except the
/// wall-time fields) depends only on the added points and
/// options.runner — not on options.workers, hardware, or scheduling.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Appends one grid point; returns its grid index.
  std::size_t add(SweepPoint point);
  std::size_t add(sim::Scenario scenario, PolicyKind policy, Workload workload,
                  std::string label = {});

  /// Appends the full cross product scenarios x policies (synthetic
  /// workload with the given pattern), in scenario-major order.
  void add_grid(const std::vector<sim::Scenario>& scenarios,
                const std::vector<PolicyKind>& policies,
                traffic::PatternKind pattern = traffic::PatternKind::kUniform);

  std::size_t size() const { return points_.size(); }
  const SweepPoint& point(std::size_t i) const { return points_.at(i); }

  /// Number of worker threads run() will actually use.
  unsigned effective_workers() const;

  /// Runs fn(0), ..., fn(count-1) on this runner's pool configuration —
  /// same worker count, same inline-when-serial reference path as run().
  /// For point-shaped work that is not one run_experiment per cell (e.g.
  /// a multi-epoch lifetime study per policy): callers get the sweep
  /// pool's determinism idiom (write into per-index slots) without
  /// hand-wiring parallel_for and a worker count.
  void for_each(std::size_t count, const std::function<void(std::size_t)>& fn) const;

  /// Executes every added point and returns the grid-ordered results.
  /// May be called repeatedly (e.g. to re-run the same grid).
  SweepResult run() const;

 private:
  SweepOptions options_;
  std::vector<SweepPoint> points_;
};

}  // namespace nbtinoc::core
