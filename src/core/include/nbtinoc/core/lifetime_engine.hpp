#pragma once
// Hierarchical lifetime acceleration: the engine behind multi-year studies
// that cannot afford a cycle-accurate measurement window for every epoch.
//
// run_lifetime_study simulates traffic for *every* epoch. But the only
// thing an epoch's simulation produces is the per-buffer duty-cycle
// distribution — and as long as the silicon the policy reacts to has not
// drifted appreciably since the last measurement, that distribution is
// unchanged (the schedulers are deterministic functions of {silicon,
// workload statistics}). The hierarchical loop exploits this: it simulates
// a short cycle-accurate measurement window, then advances the closed-form
// reaction–diffusion ΔVth (equivalent-age method, AgingForecaster) across
// epoch after epoch of virtual time *without touching the network*,
// re-measuring only when the predicted Vth drift since the last
// measurement crosses a configurable tolerance. Weeks-to-months of virtual
// time then cost one closed-form evaluation per buffer per epoch instead
// of measure_cycles_per_epoch simulated cycles — the ≥50x wall-clock lever
// gated by BENCH_lifetime.json.
//
// Setting remeasure_tolerance_v = 0 forces a measurement every epoch,
// which reproduces run_lifetime_study bit for bit (pinned by
// lifetime_engine_test) — the hierarchical loop is an approximation knob,
// not a different model.

#include "nbtinoc/core/lifetime.hpp"

namespace nbtinoc::core {

struct LifetimeEngineOptions {
  int epochs = 12;
  double years_per_epoch = 0.25;
  sim::Cycle measure_cycles_per_epoch = 60'000;
  /// Re-measure once any buffer's ΔVth has grown by at least this much
  /// (volts) since the silicon of the last measurement window. 0 measures
  /// every epoch (exact); larger values trade trajectory fidelity for
  /// wall-clock. The default re-measures after ~2 mV of drift — well under
  /// the PV sigma, so the policies' sensor rankings stay faithful.
  double remeasure_tolerance_v = 0.002;
  /// Hard cap on consecutive closed-form epochs, so a tolerance set too
  /// loose cannot extrapolate an entire study from one window.
  int max_extrapolated_epochs = 32;
  RunnerOptions runner;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

struct LifetimeEngineResult {
  /// Same shape as run_lifetime_study's output: per-epoch trajectory of
  /// the sampled port plus the full final silicon. Extrapolated epochs
  /// carry the duty distribution of the last measurement window.
  LifetimeResult study;
  int measured_epochs = 0;       ///< cycle-accurate windows actually simulated
  int extrapolated_epochs = 0;   ///< epochs advanced in closed form only
};

/// The hierarchical measure/advance loop. Construction precomputes the
/// fresh silicon; run() executes the epochs. Measurement epochs use the
/// exact per-epoch traffic salt of run_lifetime_study, so a measured epoch
/// sees the same offered load the stepped study would have.
class LifetimeEngine {
 public:
  LifetimeEngine(sim::Scenario scenario, PolicyKind policy, Workload workload,
                 noc::PortKey sampled_port, LifetimeEngineOptions options = {});

  LifetimeEngineResult run();

 private:
  /// One cycle-accurate window on the current silicon (epoch-salted
  /// traffic); refreshes the cached duty distribution.
  void measure(int epoch);
  /// Largest ΔVth growth of any buffer since the last measurement.
  double drift_since_measure() const;

  sim::Scenario scenario_;
  PolicyKind policy_;
  Workload workload_;
  noc::PortKey sampled_port_;
  LifetimeEngineOptions options_;

  std::map<noc::PortKey, std::vector<double>> fresh_;     ///< year-0 silicon
  std::map<noc::PortKey, std::vector<double>> dvth_;      ///< accumulated shift
  std::map<noc::PortKey, std::vector<double>> duty_;      ///< last measured duty (percent)
  std::map<noc::PortKey, std::vector<double>> dvth_at_measure_;
  int measured_epochs_ = 0;
  int extrapolated_epochs_ = 0;
};

/// Convenience wrapper mirroring run_lifetime_study.
LifetimeEngineResult run_hierarchical_lifetime(sim::Scenario scenario, PolicyKind policy,
                                               const Workload& workload, noc::PortKey sampled_port,
                                               const LifetimeEngineOptions& options = {});

}  // namespace nbtinoc::core
