#include "nbtinoc/core/fleet.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "nbtinoc/core/sweep.hpp"
#include "nbtinoc/util/json.hpp"
#include "nbtinoc/util/rng.hpp"
#include "nbtinoc/util/strings.hpp"
#include "nbtinoc/util/table.hpp"

namespace nbtinoc::core {

namespace {

std::string hex_bits(double v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  return buf;
}

double bits_hex(const std::string& field, const std::string& line) {
  std::size_t used = 0;
  std::uint64_t bits = 0;
  try {
    bits = std::stoull(field, &used, 16);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != field.size() || field.empty())
    throw std::runtime_error("fleet shard: bad f64 bit pattern \"" + field + "\" in line: " + line);
  return std::bit_cast<double>(bits);
}

std::size_t parse_size(const std::string& field, const std::string& line) {
  std::size_t used = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(field, &used, 10);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != field.size() || field.empty())
    throw std::runtime_error("fleet shard: bad integer \"" + field + "\" in line: " + line);
  return static_cast<std::size_t>(v);
}

/// Nearest-rank percentile on an ascending vector: element at index
/// floor(q * n), clamped — q = 0 gives the min, q -> 1 the max.
double percentile(const std::vector<double>& ascending, double q) {
  const std::size_t n = ascending.size();
  const auto at = static_cast<std::size_t>(q * static_cast<double>(n));
  return ascending[std::min(at, n - 1)];
}

}  // namespace

void FleetSpec::validate() const {
  if (chips < 1) throw std::invalid_argument("FleetSpec: chips < 1");
  if (policies.empty()) throw std::invalid_argument("FleetSpec: no policies");
  if (workloads.empty()) throw std::invalid_argument("FleetSpec: no workloads");
  if (dvth_budget_v <= 0.0) throw std::invalid_argument("FleetSpec: dvth_budget_v <= 0");
  if (failure_fraction <= 0.0 || failure_fraction > 1.0)
    throw std::invalid_argument("FleetSpec: failure_fraction must be in (0, 1]");
  if (max_years <= 0.0) throw std::invalid_argument("FleetSpec: max_years <= 0");
  for (const auto& w : workloads)
    if (w.label.empty() || w.label.find(',') != std::string::npos)
      throw std::invalid_argument("FleetSpec: workload labels must be non-empty and comma-free");
}

std::uint64_t fleet_chip_seed(const sim::Scenario& scenario, int chip) {
  util::SplitMix64 stream(scenario.pv_seed());
  std::uint64_t seed = 0;
  for (int i = 0; i <= chip; ++i) seed = stream.next();
  return seed;
}

std::string fleet_digest(const FleetSpec& spec) {
  const sim::Scenario& s = spec.scenario;
  std::string d = "fleet scenario=" + s.name;
  d += " mesh=" + std::to_string(s.mesh_width) + "x" + std::to_string(s.mesh_height);
  d += " vcs=" + std::to_string(s.num_vcs) + " vnets=" + std::to_string(s.num_vnets);
  d += " rate=" + std::to_string(s.injection_rate);
  d += " warmup=" + std::to_string(s.warmup_cycles) + " measure=" + std::to_string(s.measure_cycles);
  d += " seeds=" + std::to_string(s.pv_seed()) + "/" + std::to_string(s.traffic_seed());
  d += " chips=" + std::to_string(spec.chips);
  d += " budget=" + std::to_string(spec.dvth_budget_v);
  d += " fraction=" + std::to_string(spec.failure_fraction);
  d += " max_years=" + std::to_string(spec.max_years);
  d += " policies=";
  for (std::size_t i = 0; i < spec.policies.size(); ++i) {
    if (i > 0) d.push_back(',');
    d += to_string(spec.policies[i]);
  }
  d += " workloads=";
  for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
    if (i > 0) d.push_back(',');
    d += spec.workloads[i].label;
    d.push_back('/');
    d += std::to_string(spec.workloads[i].workload.seed_salt);
  }
  d += " rr=" + std::to_string(spec.runner.policy.rr_rotation_period) +
       " hold=" + std::to_string(spec.runner.policy.decision_period);
  return d;
}

FleetShardResult run_fleet_shard(const FleetSpec& spec, int shard_index, int shard_count,
                                 unsigned workers) {
  spec.validate();
  if (shard_count < 1 || shard_index < 0 || shard_index >= shard_count)
    throw std::invalid_argument("run_fleet_shard: need 0 <= shard_index < shard_count, got " +
                                std::to_string(shard_index) + "/" + std::to_string(shard_count));

  const std::size_t total = spec.total_points();
  const std::size_t chips = static_cast<std::size_t>(spec.chips);
  const std::size_t workload_count = spec.workloads.size();

  // Per-chip silicon, sampled once per chip in this shard (chips repeat
  // across policy/workload groups).
  noc::NocConfig net_config;
  net_config.width = spec.scenario.mesh_width;
  net_config.height = spec.scenario.mesh_height;
  net_config.num_vcs = spec.scenario.num_vcs;
  net_config.num_vnets = spec.scenario.num_vnets;
  const nbti::PvConfig pv = pv_config_of(spec.scenario);

  SweepOptions sweep_options;
  sweep_options.workers = workers;
  SweepRunner sweep(sweep_options);
  std::vector<std::size_t> global_of_point;  // sweep index -> global index
  for (std::size_t index = static_cast<std::size_t>(shard_index); index < total;
       index += static_cast<std::size_t>(shard_count)) {
    const std::size_t chip = index % chips;
    const std::size_t workload_index = (index / chips) % workload_count;
    const std::size_t policy_index = index / chips / workload_count;

    SweepPoint point;
    point.scenario = spec.scenario;
    point.policy = spec.policies[policy_index];
    point.workload = spec.workloads[workload_index].workload;
    point.label = "chip" + std::to_string(chip);
    RunnerOptions ropt = spec.runner;
    ropt.initial_vths = sample_network_vths(
        net_config, pv, fleet_chip_seed(spec.scenario, static_cast<int>(chip)));
    point.runner = std::move(ropt);
    sweep.add(std::move(point));
    global_of_point.push_back(index);
  }
  const SweepResult runs = sweep.run();

  // Reduce each run to its chip failure time: per-VC lifetimes from the
  // closed-form model, then the failure_fraction order statistic.
  const nbti::NbtiModel model = calibrated_model_of(spec.scenario, spec.runner.nbti);
  const nbti::AgingForecaster forecaster(model, operating_point_of(spec.scenario));

  FleetShardResult shard;
  shard.digest = fleet_digest(spec);
  shard.total_points = total;
  shard.shard_index = shard_index;
  shard.shard_count = shard_count;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& run = runs[i].result;
    std::vector<double> lifetimes;
    double worst_duty = 0.0;
    for (const auto& [key, port] : run.ports) {
      for (std::size_t v = 0; v < port.duty_percent.size(); ++v) {
        nbti::BufferAgingInput input;
        input.initial_vth_v = port.initial_vth_v[v];
        input.alpha = port.duty_percent[v] / 100.0;
        lifetimes.push_back(
            forecaster.lifetime_years(input, spec.dvth_budget_v, spec.max_years));
        worst_duty = std::max(worst_duty, port.duty_percent[v]);
      }
    }
    std::sort(lifetimes.begin(), lifetimes.end());
    const auto over = static_cast<std::size_t>(
        std::ceil(spec.failure_fraction * static_cast<double>(lifetimes.size())));
    const std::size_t kth = std::max<std::size_t>(over, 1) - 1;

    FleetPointOutcome outcome;
    outcome.index = global_of_point[i];
    outcome.chip = static_cast<int>(outcome.index % chips);
    outcome.workload_index = (outcome.index / chips) % workload_count;
    outcome.policy_index = outcome.index / chips / workload_count;
    outcome.failure_years = lifetimes[kth];
    outcome.worst_duty_percent = worst_duty;
    shard.outcomes.push_back(outcome);
  }
  return shard;
}

std::string serialize_fleet_shard(const FleetShardResult& shard) {
  std::string out = "NBTIFLEET v1\n";
  out += "digest " + shard.digest + "\n";
  out += "points " + std::to_string(shard.total_points) + " shard " +
         std::to_string(shard.shard_index) + "/" + std::to_string(shard.shard_count) +
         " outcomes " + std::to_string(shard.outcomes.size()) + "\n";
  for (const FleetPointOutcome& o : shard.outcomes) {
    out += "O " + std::to_string(o.index) + " " + std::to_string(o.chip) + " " +
           std::to_string(o.policy_index) + " " + std::to_string(o.workload_index) + " " +
           hex_bits(o.failure_years) + " " + hex_bits(o.worst_duty_percent) + "\n";
  }
  out += "END\n";
  return out;
}

FleetShardResult parse_fleet_shard(const std::string& text) {
  const std::vector<std::string> lines = util::split(text, '\n');
  if (lines.empty() || lines[0] != "NBTIFLEET v1")
    throw std::runtime_error(
        "fleet shard: missing \"NBTIFLEET v1\" header (is this a shard partial file?)");
  if (lines.size() < 3 || !util::starts_with(lines[1], "digest "))
    throw std::runtime_error("fleet shard: missing digest line");

  FleetShardResult shard;
  shard.digest = lines[1].substr(7);

  const std::vector<std::string> meta = util::split(lines[2], ' ');
  if (meta.size() != 6 || meta[0] != "points" || meta[2] != "shard" || meta[4] != "outcomes")
    throw std::runtime_error("fleet shard: malformed meta line: " + lines[2]);
  shard.total_points = parse_size(meta[1], lines[2]);
  const std::vector<std::string> split_shard = util::split(meta[3], '/');
  if (split_shard.size() != 2)
    throw std::runtime_error("fleet shard: malformed shard i/N field: " + lines[2]);
  shard.shard_index = static_cast<int>(parse_size(split_shard[0], lines[2]));
  shard.shard_count = static_cast<int>(parse_size(split_shard[1], lines[2]));
  const std::size_t expected = parse_size(meta[5], lines[2]);

  bool terminated = false;
  for (std::size_t i = 3; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    if (lines[i] == "END") {
      terminated = true;
      continue;
    }
    if (terminated) throw std::runtime_error("fleet shard: content after END: " + lines[i]);
    const std::vector<std::string> f = util::split(lines[i], ' ');
    if (f.size() != 7 || f[0] != "O")
      throw std::runtime_error("fleet shard: malformed outcome line: " + lines[i]);
    FleetPointOutcome o;
    o.index = parse_size(f[1], lines[i]);
    o.chip = static_cast<int>(parse_size(f[2], lines[i]));
    o.policy_index = parse_size(f[3], lines[i]);
    o.workload_index = parse_size(f[4], lines[i]);
    o.failure_years = bits_hex(f[5], lines[i]);
    o.worst_duty_percent = bits_hex(f[6], lines[i]);
    shard.outcomes.push_back(o);
  }
  if (!terminated)
    throw std::runtime_error("fleet shard: truncated partial (no END line) — the producing "
                             "shard run did not finish");
  if (shard.outcomes.size() != expected)
    throw std::runtime_error("fleet shard: outcome count " + std::to_string(shard.outcomes.size()) +
                             " does not match the declared " + std::to_string(expected));
  return shard;
}

FleetReport::FleetReport(const FleetSpec& spec, std::vector<FleetGroupReport> groups)
    : spec_(spec), groups_(std::move(groups)) {}

std::string FleetReport::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("fleet").begin_object();
  w.field("scenario", spec_.scenario.name)
      .field("chips", spec_.chips)
      .field("dvth_budget_v", spec_.dvth_budget_v)
      .field("failure_fraction", spec_.failure_fraction)
      .field("max_years", spec_.max_years);
  w.end_object();
  w.key("groups").begin_array();
  for (const FleetGroupReport& g : groups_) {
    w.begin_object();
    w.field("policy", to_string(spec_.policies[g.policy_index]));
    w.field("workload", spec_.workloads[g.workload_index].label);
    w.field("mean_years", g.mean_years)
        .field("min_years", g.min_years)
        .field("p10_years", g.p10_years)
        .field("median_years", g.median_years)
        .field("p90_years", g.p90_years)
        .field("max_years", g.max_years);
    w.key("failure_years").begin_array();
    for (double y : g.failure_years) w.value(y);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string FleetReport::to_csv() const {
  std::string out = "policy,workload,chips,mean_years,min_years,p10_years,median_years,"
                    "p90_years,max_years\n";
  for (const FleetGroupReport& g : groups_) {
    out += std::string(to_string(spec_.policies[g.policy_index])) + ',' +
           spec_.workloads[g.workload_index].label + ',' +
           std::to_string(g.failure_years.size()) + ',' + util::format_double(g.mean_years, 4) +
           ',' + util::format_double(g.min_years, 4) + ',' + util::format_double(g.p10_years, 4) +
           ',' + util::format_double(g.median_years, 4) + ',' +
           util::format_double(g.p90_years, 4) + ',' + util::format_double(g.max_years, 4) + '\n';
  }
  return out;
}

FleetReport merge_fleet_shards(const FleetSpec& spec, std::vector<FleetShardResult> shards) {
  spec.validate();
  const std::string digest = fleet_digest(spec);
  const std::size_t total = spec.total_points();

  std::vector<const FleetPointOutcome*> by_index(total, nullptr);
  for (const FleetShardResult& shard : shards) {
    if (shard.digest != digest)
      throw std::runtime_error(
          "fleet merge: shard was produced under a different fleet configuration.\n  shard "
          "digest:    " +
          shard.digest + "\n  expected digest: " + digest);
    if (shard.total_points != total)
      throw std::runtime_error("fleet merge: shard declares " +
                               std::to_string(shard.total_points) + " total points, spec has " +
                               std::to_string(total));
    for (const FleetPointOutcome& o : shard.outcomes) {
      if (o.index >= total)
        throw std::runtime_error("fleet merge: stray outcome index " + std::to_string(o.index));
      if (by_index[o.index] != nullptr)
        throw std::runtime_error("fleet merge: point " + std::to_string(o.index) +
                                 " appears in more than one shard (overlapping splits?)");
      by_index[o.index] = &o;
    }
  }
  for (std::size_t i = 0; i < total; ++i) {
    if (by_index[i] == nullptr)
      throw std::runtime_error(
          "fleet merge: point " + std::to_string(i) +
          " is missing — pass every shard partial of a complete i/N split");
  }

  const std::size_t chips = static_cast<std::size_t>(spec.chips);
  std::vector<FleetGroupReport> groups;
  for (std::size_t p = 0; p < spec.policies.size(); ++p) {
    for (std::size_t wl = 0; wl < spec.workloads.size(); ++wl) {
      FleetGroupReport g;
      g.policy_index = p;
      g.workload_index = wl;
      for (std::size_t chip = 0; chip < chips; ++chip) {
        const std::size_t index = (p * spec.workloads.size() + wl) * chips + chip;
        g.failure_years.push_back(by_index[index]->failure_years);
      }
      std::sort(g.failure_years.begin(), g.failure_years.end());
      double sum = 0.0;
      for (double y : g.failure_years) sum += y;
      g.mean_years = sum / static_cast<double>(g.failure_years.size());
      g.min_years = g.failure_years.front();
      g.max_years = g.failure_years.back();
      g.p10_years = percentile(g.failure_years, 0.10);
      g.median_years = percentile(g.failure_years, 0.50);
      g.p90_years = percentile(g.failure_years, 0.90);
      groups.push_back(std::move(g));
    }
  }
  return FleetReport(spec, std::move(groups));
}

FleetReport run_fleet(const FleetSpec& spec, unsigned workers) {
  std::vector<FleetShardResult> shards;
  shards.push_back(run_fleet_shard(spec, 0, 1, workers));
  return merge_fleet_shards(spec, std::move(shards));
}

}  // namespace nbtinoc::core
