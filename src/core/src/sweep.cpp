#include "nbtinoc/core/sweep.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "nbtinoc/util/json.hpp"
#include "nbtinoc/util/table.hpp"

namespace nbtinoc::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

std::string SweepPoint::describe() const {
  std::string s = scenario.name + "/" + to_string(policy);
  if (!label.empty()) s += "/" + label;
  return s;
}

SweepResult::SweepResult(std::vector<SweepPointResult> points) : points_(std::move(points)) {}

double SweepResult::total_point_seconds() const {
  double total = 0.0;
  for (const auto& p : points_) total += p.wall_seconds;
  return total;
}

std::string SweepResult::to_json() const {
  // core::to_json already emits a complete object per run; splice those
  // documents into a wrapper array rather than re-serializing the result.
  std::string out = "{\"points\": [";
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const auto& p = points_[i];
    if (i > 0) out += ", ";
    out += "{\"index\": " + std::to_string(i);
    out += ", \"label\": \"" + util::JsonWriter::escape(p.point.label) + "\"";
    out += ", \"wall_seconds\": " + std::to_string(p.wall_seconds);
    out += ", \"result\": " + core::to_json(p.result) + "}";
  }
  out += "]}";
  return out;
}

std::string SweepResult::to_csv() const {
  std::string out =
      "index,label,scenario,policy,mesh_width,mesh_height,num_vcs,injection_rate,"
      "packets_offered,flits_injected,flits_ejected,packets_ejected,avg_packet_latency,"
      "throughput_flits_per_cycle_per_node,total_gate_transitions,wall_seconds\n";
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const auto& p = points_[i];
    const auto& s = p.result.scenario;
    out += std::to_string(i) + ',' + p.point.label + ',' + s.name + ',' +
           to_string(p.result.policy) + ',' + std::to_string(s.mesh_width) + ',' +
           std::to_string(s.mesh_height) + ',' + std::to_string(s.num_vcs) + ',' +
           util::format_double(s.injection_rate, 4) + ',' +
           std::to_string(p.result.packets_offered) + ',' +
           std::to_string(p.result.flits_injected) + ',' +
           std::to_string(p.result.flits_ejected) + ',' +
           std::to_string(p.result.packets_ejected) + ',' +
           util::format_double(p.result.avg_packet_latency, 4) + ',' +
           util::format_double(p.result.throughput_flits_per_cycle_per_node, 6) + ',' +
           std::to_string(p.result.total_gate_transitions) + ',' +
           util::format_double(p.wall_seconds, 4) + '\n';
  }
  return out;
}

void SweepResult::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("SweepResult::write_csv: cannot open " + path);
  out << to_csv();
}

void SweepResult::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("SweepResult::write_json: cannot open " + path);
  out << to_json();
}

void parallel_for(std::size_t count, unsigned workers,
                  const std::function<void(std::size_t)>& fn) {
  unsigned n = workers;
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (count < static_cast<std::size_t>(n)) n = static_cast<unsigned>(count == 0 ? 1 : count);

  if (n <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const auto worker_loop = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;  // stop this worker; others drain their claimed indices
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (unsigned w = 0; w < n; ++w) pool.emplace_back(worker_loop);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {}

std::size_t SweepRunner::add(SweepPoint point) {
  points_.push_back(std::move(point));
  return points_.size() - 1;
}

std::size_t SweepRunner::add(sim::Scenario scenario, PolicyKind policy, Workload workload,
                             std::string label) {
  SweepPoint p;
  p.scenario = std::move(scenario);
  p.policy = policy;
  p.workload = std::move(workload);
  p.label = std::move(label);
  return add(std::move(p));
}

void SweepRunner::add_grid(const std::vector<sim::Scenario>& scenarios,
                           const std::vector<PolicyKind>& policies,
                           traffic::PatternKind pattern) {
  for (const auto& scenario : scenarios)
    for (const auto policy : policies) add(scenario, policy, Workload::synthetic(pattern));
}

unsigned SweepRunner::effective_workers() const {
  unsigned n = options_.workers;
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;  // hardware_concurrency() may be unknowable
  if (points_.size() < static_cast<std::size_t>(n))
    n = static_cast<unsigned>(points_.size() == 0 ? 1 : points_.size());
  return n;
}

void SweepRunner::for_each(std::size_t count,
                           const std::function<void(std::size_t)>& fn) const {
  parallel_for(count, options_.workers, fn);
}

SweepResult SweepRunner::run() const {
  const auto start = std::chrono::steady_clock::now();
  std::vector<SweepPointResult> results(points_.size());

  // Each point is an independent pure function of its SweepPoint (PV and
  // traffic seeds derive from the scenario inside run_experiment), so
  // workers may claim indices in any order: the write goes to the point's
  // own grid slot and carries no cross-point state.
  const auto run_point = [&](std::size_t i) {
    const auto point_start = std::chrono::steady_clock::now();
    SweepPointResult& slot = results[i];
    slot.point = points_[i];
    slot.result = run_experiment(points_[i].scenario, points_[i].policy, points_[i].workload,
                                 points_[i].runner ? *points_[i].runner : options_.runner);
    slot.wall_seconds = seconds_since(point_start);
  };

  const unsigned workers = effective_workers();
  if (workers <= 1) {
    // Reference serial path: no pool, no locks — byte-identical to calling
    // run_experiment in a loop.
    std::size_t completed = 0;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      run_point(i);
      ++completed;
      if (options_.on_progress) {
        SweepProgress prog;
        prog.completed = completed;
        prog.total = points_.size();
        prog.point_index = i;
        prog.point_seconds = results[i].wall_seconds;
        prog.elapsed_seconds = seconds_since(start);
        prog.eta_seconds = prog.completed == 0
                               ? 0.0
                               : prog.elapsed_seconds / static_cast<double>(prog.completed) *
                                     static_cast<double>(prog.total - prog.completed);
        prog.point = &points_[i];
        options_.on_progress(prog);
      }
    }
    return SweepResult(std::move(results));
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::mutex progress_mutex;
  std::exception_ptr first_error;

  const auto worker_loop = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= points_.size()) return;
      try {
        run_point(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        if (!first_error) first_error = std::current_exception();
        return;  // stop this worker; others drain their claimed points
      }
      const std::size_t done = completed.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options_.on_progress) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        SweepProgress prog;
        prog.completed = done;
        prog.total = points_.size();
        prog.point_index = i;
        prog.point_seconds = results[i].wall_seconds;
        prog.elapsed_seconds = seconds_since(start);
        prog.eta_seconds = prog.elapsed_seconds / static_cast<double>(done) *
                           static_cast<double>(prog.total - done);
        prog.point = &points_[i];
        options_.on_progress(prog);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker_loop);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return SweepResult(std::move(results));
}

}  // namespace nbtinoc::core
