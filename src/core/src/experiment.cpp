#include "nbtinoc/core/experiment.hpp"

#include <optional>
#include <stdexcept>

#include "nbtinoc/noc/state_probe.hpp"
#include "nbtinoc/sim/snapshot.hpp"
#include "nbtinoc/traffic/synthetic.hpp"
#include "nbtinoc/util/json.hpp"

namespace nbtinoc::core {

namespace {
/// Human-readable configuration digest embedded in every snapshot frame and
/// checked on restore: it must pin everything that shapes the object graph
/// or any RNG stream, so a resume under a different configuration fails
/// with both digests in the error instead of silently diverging. The
/// scheduler mode is deliberately absent — snapshots restore under any mode.
std::string config_digest(const sim::Scenario& s, PolicyKind policy, const Workload& workload,
                          const RunnerOptions& options) {
  std::string d = "scenario=" + s.name;
  d += " mesh=" + std::to_string(s.mesh_width) + "x" + std::to_string(s.mesh_height);
  d += " topo=" + s.topology + "/" + std::to_string(s.concentration);
  d += " routing=" + s.routing;
  d += " vcs=" + std::to_string(s.num_vcs) + " vnets=" + std::to_string(s.num_vnets);
  d += " depth=" + std::to_string(s.buffer_depth) + " pkt=" + std::to_string(s.packet_length);
  // Emitted only off the default so every partitioned digest — and with it
  // every pre-DAMQ snapshot — keeps its exact byte string.
  if (s.buffer_org != "partitioned")
    d += " org=" + s.buffer_org + "/" + std::to_string(s.shared_reserve);
  d += " wake=" + std::to_string(s.wakeup_latency) + " stages=" + std::to_string(s.router_stages);
  d += " rate=" + std::to_string(s.injection_rate);
  d += " warmup=" + std::to_string(s.warmup_cycles) + " measure=" + std::to_string(s.measure_cycles);
  d += " seeds=" + std::to_string(s.pv_seed()) + "/" + std::to_string(s.traffic_seed()) + "/" +
       std::to_string(s.fault_seed());
  d += " policy=";
  d += to_string(policy);
  d += " rr=" + std::to_string(options.policy.rr_rotation_period) +
       " hold=" + std::to_string(options.policy.decision_period);
  switch (workload.kind) {
    case Workload::Kind::kSynthetic:
      d += " workload=synthetic/" + std::to_string(static_cast<int>(workload.pattern));
      break;
    case Workload::Kind::kBenchmarkMix:
      d += " workload=mix/" + workload.mix.describe();
      break;
    case Workload::Kind::kTrace:
      // Pins the trace identity (its own digest string plus shape) so a
      // snapshot taken under one trace refuses to resume under another.
      d += " workload=trace/" + std::to_string(workload.trace->node_count()) + "n/" +
           std::to_string(workload.trace->record_count()) + "r/\"" + workload.trace->digest() +
           "\"";
      break;
    case Workload::Kind::kDatacenter:
      d += " workload=datacenter/" + workload.datacenter.describe();
      break;
  }
  d += " salt=" + std::to_string(workload.seed_salt);
  if (options.faults.enabled())
    d += " faults=" + std::to_string(options.faults.seed_salt) + "/" +
         std::to_string(options.faults.structural.size());
  if (!options.initial_vths.empty())
    d += " explicit_vths=" + std::to_string(options.initial_vths.size());
  return d;
}
}  // namespace

Workload Workload::synthetic(traffic::PatternKind pattern) {
  Workload w;
  w.kind = Kind::kSynthetic;
  w.pattern = pattern;
  return w;
}

Workload Workload::benchmark_mix(traffic::BenchmarkMix mix, std::uint64_t seed_salt) {
  Workload w;
  w.kind = Kind::kBenchmarkMix;
  w.mix = std::move(mix);
  w.seed_salt = seed_salt;
  return w;
}

Workload Workload::trace_replay(std::shared_ptr<const traffic::TraceFile> trace) {
  if (trace == nullptr)
    throw std::invalid_argument("Workload::trace_replay: null trace (open one with "
                                "traffic::TraceFile::open)");
  Workload w;
  w.kind = Kind::kTrace;
  w.trace = std::move(trace);
  return w;
}

Workload Workload::datacenter_aggregate(traffic::DatacenterProfile profile,
                                        std::uint64_t seed_salt) {
  profile.validate();
  Workload w;
  w.kind = Kind::kDatacenter;
  w.datacenter = profile;
  w.seed_salt = seed_salt;
  return w;
}

const PortResult& RunResult::port(noc::NodeId node, noc::Dir dir) const {
  const auto it = ports.find(noc::PortKey{node, dir});
  if (it == ports.end()) throw std::invalid_argument("RunResult::port: no such port");
  return it->second;
}

double RunResult::md_duty(noc::NodeId node, noc::Dir dir) const {
  const PortResult& p = port(node, dir);
  return p.duty_percent.at(static_cast<std::size_t>(p.most_degraded));
}

nbti::OperatingPoint operating_point_of(const sim::Scenario& scenario) {
  nbti::OperatingPoint op;
  op.vdd_v = scenario.tech.vdd_v;
  op.vth_v = scenario.tech.vth_nominal_v;
  op.temperature_k = scenario.tech.temperature_k;
  op.clock_period_s = scenario.clock_period_s;
  return op;
}

nbti::PvConfig pv_config_of(const sim::Scenario& scenario) {
  nbti::PvConfig pv;
  pv.vth_mean_v = scenario.tech.vth_nominal_v;
  pv.vth_sigma_v = scenario.tech.vth_sigma_v;
  return pv;
}

nbti::NbtiModel calibrated_model_of(const sim::Scenario& scenario, const nbti::NbtiParams& params) {
  return nbti::NbtiModel::calibrated(params, operating_point_of(scenario));
}

RunResult run_experiment(sim::Scenario scenario, PolicyKind policy, const Workload& workload,
                         const RunnerOptions& options) {
  if (options.paper_scale) scenario.use_paper_scale();
  scenario.validate();
  options.policy.validate();
  options.faults.validate();

  // Gating granularity must match the buffer organization: VC policies park
  // whole VC banks (which a DAMQ descriptor does not have), slot policies
  // gate pool slots (which a partitioned port does not have). Baseline
  // never gates and runs on both.
  const bool slot_policy = policy == PolicyKind::kSensorWiseSlotMd || policy == PolicyKind::kRrSlot;
  if (slot_policy && scenario.buffer_org != "shared")
    throw std::invalid_argument("run_experiment: policy '" + to_string(policy) +
                                "' gates pool slots and requires buffer_org=shared (scenario '" +
                                scenario.name + "' uses '" + scenario.buffer_org +
                                "'); pick a VC-granularity policy or set buffer_org=shared");
  if (!slot_policy && policy != PolicyKind::kBaseline && scenario.buffer_org == "shared")
    throw std::invalid_argument("run_experiment: VC-granularity policy '" + to_string(policy) +
                                "' cannot drive the shared organization (VC descriptors hold no "
                                "gateable buffers); use sensor-wise-slot-md, rr-slot, or baseline");

  // The network simulates in *phit* units — the quantum a 32b link moves per
  // cycle (Table I: 64b flits, 32b links => 2 phits/flit). Packet length and
  // buffer depth convert from flits; the injection rate converts from
  // flits/cycle to phits/cycle below.
  const int ppf = scenario.phits_per_flit();
  noc::NocConfig config;
  config.width = scenario.mesh_width;
  config.height = scenario.mesh_height;
  config.topology = noc::parse_topology_kind(scenario.topology);
  config.routing = noc::parse_routing_algo(scenario.routing);
  config.concentration = scenario.concentration;
  config.num_vcs = scenario.num_vcs;
  config.num_vnets = scenario.num_vnets;
  config.buffer_depth = scenario.buffer_depth * ppf;
  config.buffer_org = noc::parse_buffer_org(scenario.buffer_org);
  // The reserve is a flit count in the scenario, a phit count in the
  // network — the same scaling buffer_depth gets. Partitioned keeps the
  // NocConfig default (the knob is inert there and its validator pins it).
  if (config.buffer_org == noc::BufferOrg::kShared)
    config.shared_reserve = scenario.shared_reserve * ppf;
  config.packet_length = scenario.packet_length * ppf;
  config.wakeup_latency = scenario.wakeup_latency;
  if (scenario.router_stages < 3)
    throw std::invalid_argument("run_experiment: router_stages must be >= 3");
  config.extra_pipeline_stages = scenario.router_stages - 3;

  noc::Network network(config);

  const nbti::NbtiModel model = calibrated_model_of(scenario, options.nbti);
  PolicyConfig policy_config = options.policy;
  policy_config.kind = policy;
  auto controller =
      options.initial_vths.empty()
          ? PolicyGateController(network, policy_config, model, operating_point_of(scenario),
                                 pv_config_of(scenario), scenario.pv_seed())
          : PolicyGateController(network, policy_config, model, operating_point_of(scenario),
                                 options.initial_vths, scenario.pv_seed() ^ 0xa9edULL);
  controller.attach();

  // Fault injection: constructed only for a nonzero plan, so the default
  // RunnerOptions path builds the exact object graph it always did.
  std::optional<sim::FaultInjector> injector;
  if (options.faults.enabled()) {
    injector.emplace(options.faults, scenario.fault_seed() ^ options.faults.seed_salt);
    injector->bind_stats(&network.stats());
    network.set_fault_injector(&*injector);
    controller.set_fault_injector(&*injector);
  }

  const std::uint64_t traffic_seed = scenario.traffic_seed() ^ workload.seed_salt;
  switch (workload.kind) {
    case Workload::Kind::kSynthetic:
      traffic::install_synthetic_traffic(network, workload.pattern,
                                         scenario.injection_rate * ppf, traffic_seed);
      break;
    case Workload::Kind::kBenchmarkMix:
      traffic::install_benchmark_mix(network, workload.mix, traffic_seed, /*hotspot=*/-1,
                                     /*rate_scale=*/static_cast<double>(ppf));
      break;
    case Workload::Kind::kTrace:
      // Trace records carry phit-unit lengths (captured at the NI), so no
      // ppf rescaling happens here; the vnet check catches a trace captured
      // under a wider vnet configuration before any record misroutes.
      if (workload.trace == nullptr)
        throw std::invalid_argument("run_experiment: trace workload holds no trace");
      if (workload.trace->vnet_count() > config.num_vnets)
        throw std::invalid_argument(
            "run_experiment: trace uses " + std::to_string(workload.trace->vnet_count()) +
            " vnets but this scenario has " + std::to_string(config.num_vnets) +
            " (trace digest: \"" + workload.trace->digest() + "\")");
      traffic::install_trace_replay(network, workload.trace);
      break;
    case Workload::Kind::kDatacenter:
      traffic::install_datacenter_traffic(network, workload.datacenter, traffic_seed,
                                          /*rate_scale=*/static_cast<double>(ppf));
      break;
  }
  if (options.capture_trace != nullptr) {
    if (options.resume_from)
      throw std::invalid_argument(
          "run_experiment: capture_trace cannot combine with resume_from (the cycles before "
          "the snapshot are not observable, so the capture would silently be a suffix)");
    network.set_trace_sink(options.capture_trace);
  }

  const sim::Cycle total_cycles = scenario.warmup_cycles + scenario.measure_cycles;
  const bool snapshotting = options.snapshot_at.has_value();
  if (snapshotting || options.resume_from) {
    if (options.check_invariants)
      throw std::invalid_argument(
          "run_experiment: checkpoint/restore cannot combine with check_invariants (the "
          "per-cycle checker carries no snapshot state)");
    if (snapshotting && options.resume_from)
      throw std::invalid_argument(
          "run_experiment: resume_from and snapshot_at cannot combine in one run; resume "
          "first, then snapshot from a fresh run");
    if (snapshotting && options.snapshot_out == nullptr)
      throw std::invalid_argument("run_experiment: snapshot_at set but snapshot_out is null");
    if (snapshotting && *options.snapshot_at > total_cycles)
      throw std::invalid_argument(
          "run_experiment: snapshot_at " + std::to_string(*options.snapshot_at) +
          " is past this scenario's horizon (warmup + measure = " +
          std::to_string(total_cycles) + ")");
  }
  const std::string digest = config_digest(scenario, policy, workload, options);

  RunResult result;
  if (!options.check_invariants) {
    if (options.resume_from) {
      // Restore precedes scheduler selection: load_state rebuilds channel
      // queues, and active-set entry afterwards reconstructs the wake state
      // the snapshot deliberately omits.
      sim::SnapshotReader reader = sim::open_snapshot(*options.resume_from, digest);
      network.load_state(reader);
      controller.load(reader);
      reader.expect_end();
      if (network.clock().now() > total_cycles)
        throw sim::SnapshotError("snapshot cycle " + std::to_string(network.clock().now()) +
                                 " is past this scenario's horizon (" +
                                 std::to_string(total_cycles) + " cycles)");
    }
    if (options.scheduler)
      network.set_scheduler_mode(*options.scheduler);
    else
      network.set_fast_forward(options.fast_forward);

    const auto save_snapshot = [&] {
      // Every run() segment ends with sync_stress_accounting(), so the lazy
      // stress state serialized here is already flushed through `now`.
      sim::SnapshotWriter writer;
      network.save_state(writer);
      controller.save(writer);
      *options.snapshot_out = sim::frame_snapshot(digest, writer.take());
    };
    if (!options.resume_from) {
      // run_with_warmup, with an optional pause at snapshot_at. Splitting
      // run(n) into run(k); run(n - k) is bit-identical in every mode: all
      // scheduler state persists across run() calls and the end-of-segment
      // stress sync is an additive flush.
      const sim::Cycle snap = snapshotting ? *options.snapshot_at : total_cycles + 1;
      network.set_measuring(false);
      if (snap <= scenario.warmup_cycles) {
        network.run(snap);
        save_snapshot();
        network.run(scenario.warmup_cycles - snap);
      } else {
        network.run(scenario.warmup_cycles);
      }
      network.stats().reset();
      network.set_measuring(true);
      if (snapshotting && snap > scenario.warmup_cycles) {
        network.run(snap - scenario.warmup_cycles);
        save_snapshot();
        network.run(total_cycles - snap);
      } else {
        network.run(scenario.measure_cycles);
      }
    } else {
      // The loaded trackers carry their measuring flags, so the initial
      // set_measuring call is skipped; a snapshot taken at or before the
      // warmup boundary replays the boundary actions (the fresh-run path
      // above saves before resetting stats at snap == warmup).
      const sim::Cycle at = network.clock().now();
      if (at <= scenario.warmup_cycles) {
        network.run(scenario.warmup_cycles - at);
        network.stats().reset();
        network.set_measuring(true);
        network.run(scenario.measure_cycles);
      } else {
        network.run(total_cycles - at);
      }
    }
  } else {
    // Same schedule as run_with_warmup, with the invariant checker run
    // after every cycle (it self-resyncs across the stats reset). step()
    // honors the explicit scheduler choice (active-set steps one cycle of
    // its scheduled components; fast-forward degenerates to stepped here).
    if (options.scheduler) network.set_scheduler_mode(*options.scheduler);
    noc::InvariantChecker checker(network);
    network.set_measuring(false);
    for (sim::Cycle i = 0; i < scenario.warmup_cycles; ++i) {
      network.step();
      checker.check();
    }
    network.stats().reset();
    network.set_measuring(true);
    for (sim::Cycle i = 0; i < scenario.measure_cycles; ++i) {
      network.step();
      checker.check();
    }
    for (const auto& v : checker.violations())
      result.invariant_violations.push_back("cycle " + std::to_string(v.cycle) + ": " + v.what);
  }

  result.scenario = scenario;
  result.policy = policy;
  for (noc::NodeId id = 0; id < network.num_routers(); ++id) {
    for (int p = 0; p < config.ports_per_router(); ++p) {
      const noc::Dir dir = static_cast<noc::Dir>(p);
      if (!network.router(id).has_input(dir)) continue;
      const noc::PortKey key{id, dir};
      PortResult port;
      port.duty_percent = network.duty_cycles_percent(id, dir);
      port.initial_vth_v = controller.initial_vths(key);
      port.most_degraded = controller.most_degraded(key);
      const auto& iu = network.router(id).input(dir);
      if (const noc::SharedBufferPool* pool = iu.pool()) {
        // Shared organization: gating happens per pool slot, so the
        // transition vector indexes slots (matching duty_percent and
        // initial_vth_v, which the tracker/sensor banks already size per
        // slot via buffers_per_port()).
        port.gate_transitions.reserve(static_cast<std::size_t>(pool->num_slots()));
        for (int s = 0; s < pool->num_slots(); ++s) {
          port.gate_transitions.push_back(pool->slot_gate_transitions(s));
          result.total_gate_transitions += pool->slot_gate_transitions(s);
        }
      } else {
        port.gate_transitions.reserve(static_cast<std::size_t>(iu.num_vcs()));
        for (int v = 0; v < iu.num_vcs(); ++v) {
          port.gate_transitions.push_back(iu.vc(v).gate_transitions());
          result.total_gate_transitions += iu.vc(v).gate_transitions();
        }
      }
      result.ports.emplace(key, std::move(port));
    }
  }

  result.packets_offered = network.stats().counter("noc.packets_offered");
  result.flits_injected = network.stats().counter("noc.flits_injected");
  result.flits_ejected = network.stats().counter("noc.flits_ejected");
  result.packets_ejected = network.stats().counter("noc.packets_ejected");
  result.flits_forwarded = network.stats().counter("noc.flits_forwarded");
  result.flits_ejected_router = network.stats().counter("noc.flits_ejected_router");
  result.va_grants = network.stats().counter("noc.va_grants");
  result.ni_va_grants = network.stats().counter("noc.ni_va_grants");
  result.router_flits_out.reserve(static_cast<std::size_t>(network.num_routers()));
  for (noc::NodeId id = 0; id < network.num_routers(); ++id)
    result.router_flits_out.push_back(
        network.stats().counter(network.router(id).flits_out_stat_key()));
  if (const auto* lat = network.stats().distribution("noc.packet_latency"))
    result.avg_packet_latency = lat->mean();
  if (injector) {
    for (const auto& name : network.stats().counter_names())
      if (name.rfind("fault.", 0) == 0)
        result.fault_counters.emplace(name, network.stats().counter(name));
  }
  const double cycles = static_cast<double>(scenario.measure_cycles);
  result.throughput_flits_per_cycle_per_node =
      static_cast<double>(result.flits_ejected) / cycles / network.nodes();
  return result;
}

std::string to_json(const RunResult& result) {
  util::JsonWriter w;
  w.begin_object();
  w.key("scenario").begin_object();
  w.field("name", result.scenario.name)
      .field("mesh_width", result.scenario.mesh_width)
      .field("mesh_height", result.scenario.mesh_height);
  // Emitted only off the mesh default: mesh-run JSON stays byte-identical
  // to output produced before the topology layer existed.
  if (result.scenario.topology != "mesh") {
    w.field("topology", result.scenario.topology);
    if (result.scenario.topology == "cmesh")
      w.field("concentration", result.scenario.concentration);
  }
  // Same convention for the routing mode: "dor" runs stay byte-identical.
  if (result.scenario.routing != "dor") w.field("routing", result.scenario.routing);
  // And for the buffer organization: partitioned runs stay byte-identical.
  if (result.scenario.buffer_org != "partitioned") {
    w.field("buffer_org", result.scenario.buffer_org);
    w.field("shared_reserve", result.scenario.shared_reserve);
  }
  w.field("num_vcs", result.scenario.num_vcs)
      .field("num_vnets", result.scenario.num_vnets)
      .field("injection_rate", result.scenario.injection_rate)
      .field("warmup_cycles", static_cast<std::uint64_t>(result.scenario.warmup_cycles))
      .field("measure_cycles", static_cast<std::uint64_t>(result.scenario.measure_cycles));
  w.end_object();
  w.field("policy", to_string(result.policy));
  w.key("counters").begin_object();
  w.field("packets_offered", result.packets_offered)
      .field("flits_injected", result.flits_injected)
      .field("flits_ejected", result.flits_ejected)
      .field("packets_ejected", result.packets_ejected)
      .field("avg_packet_latency", result.avg_packet_latency)
      .field("throughput_flits_per_cycle_per_node", result.throughput_flits_per_cycle_per_node);
  w.end_object();
  // Omitted entirely for fault-free runs: their JSON stays byte-identical
  // to output produced before the fault subsystem existed.
  if (!result.fault_counters.empty()) {
    w.key("fault_counters").begin_object();
    for (const auto& [name, value] : result.fault_counters) w.field(name, value);
    w.end_object();
  }
  w.key("ports").begin_array();
  for (const auto& [key, port] : result.ports) {
    w.begin_object();
    w.field("router", key.router);
    w.field("port", noc::to_string(key.port));
    w.field("most_degraded", port.most_degraded);
    w.key("duty_percent").begin_array();
    for (double d : port.duty_percent) w.value(d);
    w.end_array();
    w.key("initial_vth_v").begin_array();
    for (double v : port.initial_vth_v) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

power::NocActivity activity_of(const RunResult& result) {
  const sim::Scenario& s = result.scenario;
  power::NocActivity a;
  a.window_seconds = static_cast<double>(s.measure_cycles) * s.clock_period_s;
  a.clock_period_s = s.clock_period_s;
  a.bits_per_flit = s.link_width_bits;  // physical transfer unit (phit)
  a.buffer_bits = s.buffer_depth * s.phits_per_flit() * s.link_width_bits;

  // Each buffer read feeds the crossbar; inter-router and ejection
  // traversals both cross it. Injection/ejection channels count as links.
  a.buffer_reads = result.flits_forwarded + result.flits_ejected_router;
  a.buffer_writes = a.buffer_reads;  // every buffered flit is written once per hop
  a.crossbar_traversals = a.buffer_reads;
  a.link_traversals = result.flits_forwarded + result.flits_injected + result.flits_ejected;
  a.allocator_grants = result.va_grants + result.ni_va_grants + a.buffer_reads;
  a.gating_transitions = result.total_gate_transitions;

  // Powered/gated cycle totals from the per-port NBTI trackers: each VC was
  // measured for exactly measure_cycles cycles.
  const double window = static_cast<double>(s.measure_cycles);
  double powered = 0.0;
  for (const auto& [key, port] : result.ports)
    for (double duty : port.duty_percent) powered += duty / 100.0 * window;
  double total_buffer_cycles = 0.0;
  for (const auto& [key, port] : result.ports)
    total_buffer_cycles += window * static_cast<double>(port.duty_percent.size());
  a.powered_buffer_cycles = static_cast<std::uint64_t>(powered);
  a.gated_buffer_cycles = static_cast<std::uint64_t>(total_buffer_cycles - powered);
  return a;
}

}  // namespace nbtinoc::core
