#include "nbtinoc/core/lifetime_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nbtinoc::core {

void LifetimeEngineOptions::validate() const {
  if (epochs < 1) throw std::invalid_argument("LifetimeEngine: epochs < 1");
  if (years_per_epoch <= 0.0) throw std::invalid_argument("LifetimeEngine: years_per_epoch <= 0");
  if (measure_cycles_per_epoch == 0)
    throw std::invalid_argument("LifetimeEngine: measure_cycles_per_epoch must be >= 1");
  if (remeasure_tolerance_v < 0.0)
    throw std::invalid_argument(
        "LifetimeEngine: remeasure_tolerance_v < 0 (use 0 to measure every epoch)");
  if (max_extrapolated_epochs < 1)
    throw std::invalid_argument("LifetimeEngine: max_extrapolated_epochs < 1");
}

LifetimeEngine::LifetimeEngine(sim::Scenario scenario, PolicyKind policy, Workload workload,
                               noc::PortKey sampled_port, LifetimeEngineOptions options)
    : scenario_(std::move(scenario)),
      policy_(policy),
      workload_(std::move(workload)),
      sampled_port_(sampled_port),
      options_(std::move(options)) {
  options_.validate();
  scenario_.warmup_cycles = options_.measure_cycles_per_epoch / 5;
  scenario_.measure_cycles = options_.measure_cycles_per_epoch;

  noc::NocConfig net_config;
  net_config.width = scenario_.mesh_width;
  net_config.height = scenario_.mesh_height;
  net_config.num_vcs = scenario_.num_vcs;
  net_config.num_vnets = scenario_.num_vnets;
  fresh_ = sample_network_vths(net_config, pv_config_of(scenario_), scenario_.pv_seed());
  if (!fresh_.count(sampled_port_))
    throw std::invalid_argument("LifetimeEngine: sampled port does not exist");
  for (const auto& [key, bank] : fresh_) {
    dvth_[key].assign(bank.size(), 0.0);
    dvth_at_measure_[key].assign(bank.size(), 0.0);
  }
}

void LifetimeEngine::measure(int epoch) {
  RunnerOptions ropt = options_.runner;
  ropt.policy.kind = policy_;
  for (const auto& [key, bank] : fresh_) {
    auto& aged = ropt.initial_vths[key];
    aged.resize(bank.size());
    for (std::size_t i = 0; i < bank.size(); ++i) aged[i] = bank[i] + dvth_.at(key)[i];
  }
  // The exact per-epoch traffic salt of run_lifetime_study: a measured
  // epoch here sees the identical offered load the stepped loop would, so
  // tolerance 0 reproduces it bit for bit.
  Workload epoch_workload = workload_;
  epoch_workload.seed_salt ^= 0x11d0ULL * static_cast<std::uint64_t>(epoch + 1);
  const RunResult run = run_experiment(scenario_, policy_, epoch_workload, ropt);

  for (const auto& [key, bank] : fresh_) duty_[key] = run.ports.at(key).duty_percent;
  dvth_at_measure_ = dvth_;
  ++measured_epochs_;
}

double LifetimeEngine::drift_since_measure() const {
  double drift = 0.0;
  for (const auto& [key, shifts] : dvth_) {
    const auto& at_measure = dvth_at_measure_.at(key);
    for (std::size_t i = 0; i < shifts.size(); ++i)
      drift = std::max(drift, shifts[i] - at_measure[i]);
  }
  return drift;
}

LifetimeEngineResult LifetimeEngine::run() {
  const nbti::NbtiModel model = calibrated_model_of(scenario_, options_.runner.nbti);
  const nbti::AgingForecaster forecaster(model, operating_point_of(scenario_));
  const double epoch_seconds = nbti::AgingForecaster::years_to_seconds(options_.years_per_epoch);

  LifetimeEngineResult out;
  out.study.sampled_port = sampled_port_;

  int previous_md = -1;
  int epochs_since_measure = 0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    const bool must_measure = measured_epochs_ == 0 ||
                              drift_since_measure() >= options_.remeasure_tolerance_v ||
                              epochs_since_measure >= options_.max_extrapolated_epochs;
    if (must_measure) {
      measure(epoch);
      epochs_since_measure = 0;
    } else {
      ++extrapolated_epochs_;
      ++epochs_since_measure;
    }

    // Advance every buffer by the epoch length at its (last measured) duty
    // — identical arithmetic to run_lifetime_study's per-epoch step.
    for (auto& [key, shifts] : dvth_) {
      const auto& duty = duty_.at(key);
      for (std::size_t i = 0; i < shifts.size(); ++i)
        shifts[i] = forecaster.advance_dvth(shifts[i], duty[i] / 100.0, epoch_seconds,
                                            fresh_.at(key)[i]);
    }

    LifetimeEpoch record;
    record.years_elapsed = (epoch + 1) * options_.years_per_epoch;
    record.duty_percent = duty_.at(sampled_port_);
    record.vth_v.resize(dvth_.at(sampled_port_).size());
    for (std::size_t i = 0; i < record.vth_v.size(); ++i)
      record.vth_v[i] = fresh_.at(sampled_port_)[i] + dvth_.at(sampled_port_)[i];
    record.most_degraded = static_cast<int>(std::distance(
        record.vth_v.begin(), std::max_element(record.vth_v.begin(), record.vth_v.end())));
    if (previous_md >= 0 && record.most_degraded != previous_md) ++out.study.md_changes;
    previous_md = record.most_degraded;
    out.study.epochs.push_back(std::move(record));
  }

  const auto& final_vths = out.study.epochs.back().vth_v;
  out.study.final_worst_vth_v = *std::max_element(final_vths.begin(), final_vths.end());
  out.study.final_spread_v =
      out.study.final_worst_vth_v - *std::min_element(final_vths.begin(), final_vths.end());
  for (const auto& [key, bank] : fresh_) {
    auto& final_bank = out.study.final_vths[key];
    final_bank.resize(bank.size());
    for (std::size_t i = 0; i < bank.size(); ++i) final_bank[i] = bank[i] + dvth_.at(key)[i];
  }
  out.measured_epochs = measured_epochs_;
  out.extrapolated_epochs = extrapolated_epochs_;
  return out;
}

LifetimeEngineResult run_hierarchical_lifetime(sim::Scenario scenario, PolicyKind policy,
                                               const Workload& workload, noc::PortKey sampled_port,
                                               const LifetimeEngineOptions& options) {
  return LifetimeEngine(std::move(scenario), policy, workload, sampled_port, options).run();
}

}  // namespace nbtinoc::core
