#include "nbtinoc/core/policy.hpp"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "nbtinoc/util/strings.hpp"

namespace nbtinoc::core {

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kBaseline:
      return "baseline";
    case PolicyKind::kRrNoSensor:
      return "rr-no-sensor";
    case PolicyKind::kSensorWiseNoTraffic:
      return "sensor-wise-no-traffic";
    case PolicyKind::kSensorWise:
      return "sensor-wise";
    case PolicyKind::kSensorRank:
      return "sensor-rank";
    case PolicyKind::kSensorWiseSlotMd:
      return "sensor-wise-slot-md";
    case PolicyKind::kRrSlot:
      return "rr-slot";
  }
  return "?";
}

PolicyKind parse_policy(const std::string& name) {
  const std::string n = util::to_lower(name);
  if (n == "baseline" || n == "always-on" || n == "none") return PolicyKind::kBaseline;
  if (n == "rr-no-sensor" || n == "rr_no_sensor" || n == "rr") return PolicyKind::kRrNoSensor;
  if (n == "sensor-wise-no-traffic" || n == "sensor_wise_no_traffic" || n == "swnt")
    return PolicyKind::kSensorWiseNoTraffic;
  if (n == "sensor-wise" || n == "sensor_wise" || n == "sw") return PolicyKind::kSensorWise;
  if (n == "sensor-rank" || n == "sensor_rank" || n == "rank") return PolicyKind::kSensorRank;
  if (n == "sensor-wise-slot-md" || n == "sensor_wise_slot_md" || n == "sw-slot")
    return PolicyKind::kSensorWiseSlotMd;
  if (n == "rr-slot" || n == "rr_slot") return PolicyKind::kRrSlot;
  throw std::invalid_argument("unknown policy: " + name);
}

noc::GateCommand rr_no_sensor_decide(const noc::OutVcStateView& view, int candidate,
                                     bool new_traffic) {
  const int num_vcs = view.num_vcs();
  noc::GateCommand cmd;
  cmd.gating_active = true;
  // Algorithm 1 lines 4-7: no new packet -> de-assert enable; the
  // downstream router recovers all of its idle VCs.
  if (!new_traffic) {
    cmd.enable = false;
    cmd.keep_vc = candidate;  // a valid VC-ID is always driven on the lines
    return cmd;
  }
  // Lines 8-17: starting at the rotating candidate, the first idle or
  // recovering VC is set idle (kept awake) for the incoming packet.
  int offset_vc = candidate % num_vcs;
  for (int iter = 0; iter < num_vcs; ++iter) {
    if (view.is_idle(offset_vc) || view.is_recovery(offset_vc)) {
      cmd.enable = true;
      cmd.keep_vc = offset_vc;
      return cmd;
    }
    offset_vc = (offset_vc + 1) % num_vcs;
  }
  // All VCs are busy with packets: nothing to keep awake.
  cmd.enable = false;
  cmd.keep_vc = candidate;
  return cmd;
}

noc::GateCommand sensor_wise_decide(const noc::OutVcStateView& view, int most_degraded,
                                    bool bool_traffic) {
  const int num_vcs = view.num_vcs();
  const int reserve = bool_traffic ? 1 : 0;

  // Lines 5-8: conceptually restore every recovered VC to idle; the idle
  // pool is every non-active VC.
  int count_idle = 0;
  for (int vc = 0; vc < num_vcs; ++vc)
    if (!view.is_active(vc)) ++count_idle;

  // Per-VC recovery marks as a bitmask: this runs per port per vnet per
  // cycle, and a vector<bool> here was a measurable hot-path allocation.
  if (num_vcs > 64)
    throw std::invalid_argument("sensor_wise_decide: more than 64 VCs per vnet unsupported");
  std::uint64_t to_recovery = 0;

  // Lines 9-11: the most degraded VC is put into recovery *first*, provided
  // an idle VC remains available for a potential new packet.
  if (most_degraded >= 0 && most_degraded < num_vcs && !view.is_active(most_degraded) &&
      count_idle > reserve) {
    to_recovery |= std::uint64_t{1} << most_degraded;
    --count_idle;
  }

  // Lines 12-16: gate the remaining idle VCs in index order while more than
  // `reserve` remain; the surviving idle VC is the one left awake.
  int idle_vc = noc::kInvalidVc;
  for (int vc = 0; vc < num_vcs; ++vc) {
    if (view.is_active(vc) || ((to_recovery >> vc) & 1u) != 0) continue;
    if (count_idle > reserve) {
      to_recovery |= std::uint64_t{1} << vc;
      --count_idle;
    } else {
      idle_vc = vc;
    }
  }

  // Lines 17-18: the VC is actually left idle iff new traffic needs it.
  noc::GateCommand cmd;
  cmd.gating_active = true;
  cmd.enable = bool_traffic && idle_vc != noc::kInvalidVc;
  cmd.keep_vc = idle_vc;
  return cmd;
}

noc::GateCommand sensor_rank_decide(const noc::OutVcStateView& view,
                                    const std::vector<double>& degradation, bool bool_traffic) {
  const int num_vcs = view.num_vcs();
  if (static_cast<int>(degradation.size()) != num_vcs)
    throw std::invalid_argument("sensor_rank_decide: degradation size mismatch");
  // Keep the *least* degraded non-active VC awake; everything else in the
  // pool recovers. Without traffic, recover the whole pool.
  int healthiest = noc::kInvalidVc;
  for (int vc = 0; vc < num_vcs; ++vc) {
    if (view.is_active(vc)) continue;
    if (healthiest == noc::kInvalidVc ||
        degradation[static_cast<std::size_t>(vc)] <
            degradation[static_cast<std::size_t>(healthiest)]) {
      healthiest = vc;
    }
  }
  noc::GateCommand cmd;
  cmd.gating_active = true;
  cmd.enable = bool_traffic && healthiest != noc::kInvalidVc;
  cmd.keep_vc = healthiest;
  return cmd;
}

namespace {

/// Lowest-index extremum scans, matching the sensor-bank comparator tree's
/// tie-break so faulted (effective-reading) and healthy paths rank alike.
int most_degraded_free_slot(const noc::SharedBufferPool& pool,
                            const std::vector<double>& degradation) {
  int best = noc::kInvalidVc;
  for (int s = 0; s < pool.num_slots(); ++s) {
    if (pool.slot_state(s) != noc::SharedBufferPool::SlotState::kFree) continue;
    if (best == noc::kInvalidVc || degradation[static_cast<std::size_t>(s)] >
                                       degradation[static_cast<std::size_t>(best)])
      best = s;
  }
  return best;
}

int least_degraded_gated_slot(const noc::SharedBufferPool& pool,
                              const std::vector<double>& degradation) {
  int best = noc::kInvalidVc;
  for (int s = 0; s < pool.num_slots(); ++s) {
    if (pool.slot_state(s) != noc::SharedBufferPool::SlotState::kGated) continue;
    if (best == noc::kInvalidVc || degradation[static_cast<std::size_t>(s)] <
                                       degradation[static_cast<std::size_t>(best)])
      best = s;
  }
  return best;
}

}  // namespace

noc::GateCommand sensor_wise_slot_decide(const noc::SharedBufferPool& pool,
                                         const std::vector<double>& degradation,
                                         bool new_traffic) {
  if (static_cast<int>(degradation.size()) < pool.num_slots())
    throw std::invalid_argument("sensor_wise_slot_decide: degradation size mismatch");
  noc::GateCommand cmd;
  cmd.gating_active = true;
  cmd.enable = false;
  cmd.keep_vc = noc::kInvalidVc;
  cmd.first_vc = 0;
  cmd.range_vcs = 0;
  const int free = pool.free_slots();
  const int vcs = pool.num_vcs();
  // Gated slots shrink shared_limit(), so deep gating can throttle live
  // traffic down to per-VC stop-and-wait on the reserved path — and in that
  // regime new_traffic (a head flit awaiting VA upstream) goes quiet, so it
  // cannot be the wake trigger. credit_starved() reads the pressure off the
  // outstanding charges instead and reopens the shared region.
  if (pool.credit_starved() || (new_traffic && free < vcs)) {
    // Headroom is short for the traffic that is coming: wake the Gated slot
    // that has recovered the longest (lowest effective Vth).
    const int wake = least_degraded_gated_slot(pool, degradation);
    if (wake != noc::kInvalidVc) {
      cmd.enable = true;
      cmd.keep_vc = wake;
    }
    return cmd;
  }
  // While some VC depends on the shared region (charge at reserve), gating
  // must leave a slot of send headroom after the transition — otherwise the
  // gate and the starvation wake thrash on the same slot. With no such
  // demand, M* alone binds and the pool walks to the all-gated fixed point.
  const bool headroom_ok = pool.vcs_at_reserve() == 0 || pool.credit_headroom() >= 2;
  if ((!new_traffic || free > vcs) && headroom_ok && pool.can_gate()) {
    // Surplus headroom (or no traffic at all): recover the most degraded
    // Free slot, one per cycle. The can_gate() guard keeps the command a
    // structural no-op at the gating fixed point.
    const int victim = most_degraded_free_slot(pool, degradation);
    if (victim != noc::kInvalidVc) {
      cmd.first_vc = victim;
      cmd.range_vcs = 1;
    }
  }
  return cmd;
}

noc::GateCommand rr_slot_decide(const noc::SharedBufferPool& pool, int candidate,
                                bool new_traffic) {
  const int slots = pool.num_slots();
  candidate = ((candidate % slots) + slots) % slots;
  const auto scan = [&](noc::SharedBufferPool::SlotState want) {
    for (int i = 0; i < slots; ++i) {
      const int s = candidate + i < slots ? candidate + i : candidate + i - slots;
      if (pool.slot_state(s) == want) return s;
    }
    return noc::kInvalidVc;
  };
  noc::GateCommand cmd;
  cmd.gating_active = true;
  cmd.enable = false;
  cmd.keep_vc = noc::kInvalidVc;
  cmd.first_vc = 0;
  cmd.range_vcs = 0;
  const int free = pool.free_slots();
  const int vcs = pool.num_vcs();
  // Same wake/gate conditions as sensor_wise_slot_decide (credit-pressure
  // wake, headroom-preserving gate guard); only the slot choice differs.
  if (pool.credit_starved() || (new_traffic && free < vcs)) {
    const int wake = scan(noc::SharedBufferPool::SlotState::kGated);
    if (wake != noc::kInvalidVc) {
      cmd.enable = true;
      cmd.keep_vc = wake;
    }
    return cmd;
  }
  const bool headroom_ok = pool.vcs_at_reserve() == 0 || pool.credit_headroom() >= 2;
  if ((!new_traffic || free > vcs) && headroom_ok && pool.can_gate()) {
    const int victim = scan(noc::SharedBufferPool::SlotState::kFree);
    if (victim != noc::kInvalidVc) {
      cmd.first_vc = victim;
      cmd.range_vcs = 1;
    }
  }
  return cmd;
}

}  // namespace nbtinoc::core
