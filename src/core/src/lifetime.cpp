#include "nbtinoc/core/lifetime.hpp"

#include <algorithm>
#include <stdexcept>

namespace nbtinoc::core {

LifetimeResult run_lifetime_study(sim::Scenario scenario, PolicyKind policy,
                                  const Workload& workload, noc::PortKey sampled_port,
                                  const LifetimeOptions& options) {
  if (options.epochs < 1) throw std::invalid_argument("run_lifetime_study: epochs < 1");
  if (options.years_per_epoch <= 0.0)
    throw std::invalid_argument("run_lifetime_study: years_per_epoch <= 0");
  if (options.measure_cycles_per_epoch == 0)
    throw std::invalid_argument(
        "run_lifetime_study: measure_cycles_per_epoch must be >= 1 — each "
        "epoch needs a measurement window to sample duty cycles from "
        "(Scenario::validate would reject the derived measure_cycles anyway)");

  scenario.warmup_cycles = options.measure_cycles_per_epoch / 5;
  scenario.measure_cycles = options.measure_cycles_per_epoch;

  const nbti::NbtiModel model = calibrated_model_of(scenario, options.runner.nbti);
  const nbti::OperatingPoint op = operating_point_of(scenario);
  const nbti::AgingForecaster forecaster(model, op);
  const double epoch_seconds = nbti::AgingForecaster::years_to_seconds(options.years_per_epoch);

  // Year-0 silicon (fresh PV sample) plus accumulated shifts tracked apart,
  // so the Eq.1 operating point keeps using the fabrication-time Vth.
  noc::NocConfig net_config;
  net_config.width = scenario.mesh_width;
  net_config.height = scenario.mesh_height;
  net_config.num_vcs = scenario.num_vcs;
  net_config.num_vnets = scenario.num_vnets;
  const auto fresh = sample_network_vths(net_config, pv_config_of(scenario), scenario.pv_seed());
  if (!fresh.count(sampled_port))
    throw std::invalid_argument("run_lifetime_study: sampled port does not exist");

  std::map<noc::PortKey, std::vector<double>> dvth;
  for (const auto& [key, bank] : fresh) dvth[key].assign(bank.size(), 0.0);

  LifetimeResult result;
  result.sampled_port = sampled_port;

  int previous_md = -1;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Current silicon = fresh + accumulated shift.
    RunnerOptions ropt = options.runner;
    ropt.policy.kind = policy;
    for (const auto& [key, bank] : fresh) {
      auto& aged = ropt.initial_vths[key];
      aged.resize(bank.size());
      for (std::size_t i = 0; i < bank.size(); ++i) aged[i] = bank[i] + dvth.at(key)[i];
    }

    // One epoch of traffic (fresh stream each epoch, same statistics).
    Workload epoch_workload = workload;
    epoch_workload.seed_salt ^= 0x11d0ULL * static_cast<std::uint64_t>(epoch + 1);
    const RunResult run = run_experiment(scenario, policy, epoch_workload, ropt);

    // Advance every buffer by the epoch length at its measured duty.
    for (auto& [key, shifts] : dvth) {
      const auto& port = run.ports.at(key);
      for (std::size_t i = 0; i < shifts.size(); ++i) {
        shifts[i] = forecaster.advance_dvth(shifts[i], port.duty_percent[i] / 100.0,
                                            epoch_seconds, fresh.at(key)[i]);
      }
    }

    // Record the sampled port.
    LifetimeEpoch record;
    record.years_elapsed = (epoch + 1) * options.years_per_epoch;
    record.duty_percent = run.ports.at(sampled_port).duty_percent;
    record.vth_v.resize(dvth.at(sampled_port).size());
    for (std::size_t i = 0; i < record.vth_v.size(); ++i)
      record.vth_v[i] = fresh.at(sampled_port)[i] + dvth.at(sampled_port)[i];
    record.most_degraded = static_cast<int>(std::distance(
        record.vth_v.begin(), std::max_element(record.vth_v.begin(), record.vth_v.end())));
    if (previous_md >= 0 && record.most_degraded != previous_md) ++result.md_changes;
    previous_md = record.most_degraded;
    result.epochs.push_back(std::move(record));
  }

  const auto& final_vths = result.epochs.back().vth_v;
  result.final_worst_vth_v = *std::max_element(final_vths.begin(), final_vths.end());
  result.final_spread_v =
      result.final_worst_vth_v - *std::min_element(final_vths.begin(), final_vths.end());
  for (const auto& [key, bank] : fresh) {
    auto& out = result.final_vths[key];
    out.resize(bank.size());
    for (std::size_t i = 0; i < bank.size(); ++i) out[i] = bank[i] + dvth.at(key)[i];
  }
  return result;
}

}  // namespace nbtinoc::core
