#include "nbtinoc/core/controller.hpp"

#include <algorithm>
#include <stdexcept>

#include "nbtinoc/noc/topology.hpp"

namespace nbtinoc::core {

void PolicyConfig::validate() const {
  if (rr_rotation_period == 0)
    throw std::invalid_argument(
        "PolicyConfig: rr_rotation_period must be >= 1 (the rr candidate is "
        "(now / rr_rotation_period) % num_vcs; 0 divides by zero)");
  if (decision_period == 0)
    throw std::invalid_argument(
        "PolicyConfig: decision_period must be >= 1 (0 would never refresh a "
        "held decision; use 1 for the paper's per-cycle behavior)");
  if (sensor.epoch_cycles == 0)
    throw std::invalid_argument(
        "PolicyConfig: sensor.epoch_cycles must be >= 1 (a zero-length epoch "
        "would refresh sensors every cycle and defeat the Down_Up protocol)");
}

std::map<noc::PortKey, std::vector<double>> sample_network_vths(const noc::NocConfig& config,
                                                                const nbti::PvConfig& pv,
                                                                std::uint64_t seed) {
  nbti::ProcessVariation sampler(pv, seed);
  const auto topo = noc::Topology::create(config);
  std::map<noc::PortKey, std::vector<double>> out;
  for (noc::NodeId id = 0; id < topo->num_routers(); ++id) {
    // Die-position gradient coordinates come from the topology (identical
    // to the mesh's x/(width-1) arithmetic on non-concentrated layouts, so
    // the sampling stream — and every seeded experiment — is unchanged).
    const double xn = topo->norm_x(id);
    const double yn = topo->norm_y(id);
    for (int p = 0; p < topo->ports_per_router(); ++p) {
      const noc::Dir port = static_cast<noc::Dir>(p);
      // An input port exists iff a neighbor feeds it; local ports always
      // exist.
      if (!noc::is_local(port) && topo->neighbor(id, port) == noc::kInvalidNode) continue;
      // One Vth per gateable buffer: a VC bank entry under the partitioned
      // organization, a pool slot under the shared one (same count when
      // partitioned, so established seeds keep their silicon).
      out.emplace(noc::PortKey{id, port},
                  sampler.sample_bank(static_cast<std::size_t>(config.buffers_per_port()), xn, yn));
    }
  }
  return out;
}

PolicyGateController::PolicyGateController(noc::Network& network, PolicyConfig config,
                                           const nbti::NbtiModel& model, nbti::OperatingPoint op,
                                           const nbti::PvConfig& pv, std::uint64_t pv_seed)
    : PolicyGateController(network, config, model, op,
                           sample_network_vths(network.config(), pv, pv_seed),
                           pv_seed ^ 0x6e6f697365ULL /* "noise" */) {}

PolicyGateController::PolicyGateController(noc::Network& network, PolicyConfig config,
                                           const nbti::NbtiModel& model, nbti::OperatingPoint op,
                                           std::map<noc::PortKey, std::vector<double>> initial_vths,
                                           std::uint64_t noise_seed)
    : network_(&network), config_(config), name_(to_string(config.kind)),
      shared_(network.config().shared_buffers()),
      h_quarantined_cycles_(network.stats().intern("fault.quarantined_port_cycles")),
      h_quarantines_(network.stats().intern("fault.quarantines")),
      h_recoveries_(network.stats().intern("fault.recoveries")),
      degradation_scratch_(static_cast<std::size_t>(network.config().buffers_per_port())) {
  // Sanity: every existing input port must be covered with one Vth per
  // gateable buffer (VC bank entry or pool slot).
  const auto& cfg = network.config();
  for (noc::NodeId id = 0; id < network.num_routers(); ++id) {
    for (int p = 0; p < cfg.ports_per_router(); ++p) {
      const noc::Dir port = static_cast<noc::Dir>(p);
      if (!network.router(id).has_input(port)) continue;
      const auto it = initial_vths.find(noc::PortKey{id, port});
      if (it == initial_vths.end() ||
          it->second.size() != static_cast<std::size_t>(cfg.buffers_per_port()))
        throw std::invalid_argument("PolicyGateController: initial_vths must cover every port");
    }
  }
  util::SplitMix64 noise_seeder(noise_seed);
  for (auto& [key, bank_vths] : initial_vths) {
    PortContext ctx{bank_vths, nbti::NbtiSensorBank(bank_vths, model, op, config_.sensor,
                                                    noise_seeder.next())};
    ctx.effective_vths.resize(ctx.sensors.size());
    for (std::size_t i = 0; i < ctx.sensors.size(); ++i)
      ctx.effective_vths[i] = ctx.sensors.measured_vth(i);
    ports_.emplace(key, std::move(ctx));
  }
}

const char* PolicyGateController::name() const { return name_.c_str(); }

const nbti::NbtiSensorBank& PolicyGateController::sensors(const noc::PortKey& key) const {
  return ports_.at(key).sensors;
}

const std::vector<double>& PolicyGateController::initial_vths(const noc::PortKey& key) const {
  return ports_.at(key).initial_vths;
}

int PolicyGateController::most_degraded(const noc::PortKey& key) const {
  return static_cast<int>(ports_.at(key).sensors.most_degraded());
}

int PolicyGateController::local_most_degraded(const noc::PortKey& key,
                                              const noc::OutVcStateView& view) const {
  const auto global = ports_.at(key).sensors.most_degraded_in(
      static_cast<std::size_t>(view.first_vc()), static_cast<std::size_t>(view.num_vcs()));
  return static_cast<int>(global) - view.first_vc();
}

noc::GateCommand PolicyGateController::decide(const noc::PortKey& key,
                                              const noc::OutVcStateView& view, bool new_traffic,
                                              sim::Cycle now) {
  // Shared organization: decisions are slot-form and already rate-limited
  // to one gate + one wake per port per cycle, and the VC-indexed hysteresis
  // cache below cannot interpret slot ids — compute fresh every call.
  if (config_.decision_period <= 1 || shared_) return compute(key, view, new_traffic, now);
  // Hysteresis: hold the previous decision for decision_period cycles.
  // Exceptions (asynchronous overrides, both computable from signals the
  // upstream router already has): new traffic while the held command keeps
  // nothing awake, or while the kept VC has meanwhile been allocated —
  // either would stall VA for up to a full period.
  HeldDecision& held = held_[{key, view.first_vc()}];
  const bool kept_unusable =
      held.valid && held.command.enable &&
      (held.command.keep_vc < 0 || view.is_active(held.command.keep_vc));
  const bool must_refresh = !held.valid || now >= held.held_until ||
                            (new_traffic && (!held.command.enable || kept_unusable));
  if (must_refresh) {
    held.command = compute(key, view, new_traffic, now);
    held.held_until = now + config_.decision_period;
    held.valid = true;
  }
  return held.command;
}

int PolicyGateController::effective_local_most_degraded(const PortContext& ctx,
                                                        const noc::OutVcStateView& view) const {
  int worst = 0;
  for (int i = 1; i < view.num_vcs(); ++i)
    if (ctx.effective_vths.at(static_cast<std::size_t>(view.global_vc(i))) >
        ctx.effective_vths.at(static_cast<std::size_t>(view.global_vc(worst))))
      worst = i;
  return worst;
}

noc::GateCommand PolicyGateController::compute(const noc::PortKey& key,
                                               const noc::OutVcStateView& view, bool new_traffic,
                                               sim::Cycle now) {
  // Under fault injection the sensor policies act on the *effective* (last
  // delivered, possibly corrupted) readings, and a quarantined port runs
  // the sensor-free rr fallback: keep gating, stop trusting. With no
  // injector this block is dead and the paths below are bit-identical to
  // the fault-free build.
  // Targeted plans (FaultPlan::targets) confine the storm: an untargeted
  // port never sees corrupted readings or quarantine and must take the
  // fault-free paths below — its effective_vths are never refreshed.
  const bool faulted = injector_ != nullptr && injector_->enabled() &&
                       injector_->plan().targets_port(static_cast<int>(key.router),
                                                     static_cast<int>(key.port));
  const bool sensor_policy = config_.kind == PolicyKind::kSensorWiseNoTraffic ||
                             config_.kind == PolicyKind::kSensorWise ||
                             config_.kind == PolicyKind::kSensorRank ||
                             config_.kind == PolicyKind::kSensorWiseSlotMd;
  if (faulted && sensor_policy) {
    const PortContext& ctx = ports_.at(key);
    if (ctx.quarantined) {
      if (config_.kind == PolicyKind::kSensorWiseSlotMd) {
        // Slot policies fall back to the slot-form sensor-less baseline —
        // the command stays in slot coordinates for this port's pool.
        const noc::SharedBufferPool& pool = *view.unit()->pool();
        const int candidate = static_cast<int>((now / config_.rr_rotation_period) %
                                               static_cast<sim::Cycle>(pool.num_slots()));
        return rr_slot_decide(pool, candidate, new_traffic);
      }
      const int candidate = static_cast<int>((now / config_.rr_rotation_period) %
                                             static_cast<sim::Cycle>(view.num_vcs()));
      return rr_no_sensor_decide(view, candidate, new_traffic);
    }
    switch (config_.kind) {
      case PolicyKind::kSensorWiseNoTraffic:
        return sensor_wise_decide(view, effective_local_most_degraded(ctx, view),
                                  /*bool_traffic=*/true);
      case PolicyKind::kSensorWise:
        return sensor_wise_decide(view, effective_local_most_degraded(ctx, view), new_traffic);
      case PolicyKind::kSensorWiseSlotMd: {
        const noc::SharedBufferPool& pool = *view.unit()->pool();
        degradation_scratch_.resize(ctx.effective_vths.size());
        for (std::size_t s = 0; s < ctx.effective_vths.size(); ++s)
          degradation_scratch_[s] = ctx.effective_vths[s];
        return sensor_wise_slot_decide(pool, degradation_scratch_, new_traffic);
      }
      default: {
        degradation_scratch_.resize(static_cast<std::size_t>(view.num_vcs()));
        for (int i = 0; i < view.num_vcs(); ++i)
          degradation_scratch_[static_cast<std::size_t>(i)] =
              ctx.effective_vths.at(static_cast<std::size_t>(view.global_vc(i)));
        return sensor_rank_decide(view, degradation_scratch_, new_traffic);
      }
    }
  }
  switch (config_.kind) {
    case PolicyKind::kBaseline:
      return noc::GateCommand{};
    case PolicyKind::kRrNoSensor: {
      const int candidate =
          static_cast<int>((now / config_.rr_rotation_period) % static_cast<sim::Cycle>(view.num_vcs()));
      return rr_no_sensor_decide(view, candidate, new_traffic);
    }
    case PolicyKind::kSensorWiseNoTraffic:
      return sensor_wise_decide(view, local_most_degraded(key, view), /*bool_traffic=*/true);
    case PolicyKind::kSensorWise:
      return sensor_wise_decide(view, local_most_degraded(key, view), new_traffic);
    case PolicyKind::kSensorRank: {
      const auto& sensors = ports_.at(key).sensors;
      degradation_scratch_.resize(static_cast<std::size_t>(view.num_vcs()));
      for (int i = 0; i < view.num_vcs(); ++i)
        degradation_scratch_[static_cast<std::size_t>(i)] =
            sensors.measured_vth(static_cast<std::size_t>(view.global_vc(i)));
      return sensor_rank_decide(view, degradation_scratch_, new_traffic);
    }
    case PolicyKind::kSensorWiseSlotMd: {
      const auto& sensors = ports_.at(key).sensors;
      const noc::SharedBufferPool& pool = *view.unit()->pool();
      degradation_scratch_.resize(sensors.size());
      for (std::size_t s = 0; s < sensors.size(); ++s)
        degradation_scratch_[s] = sensors.measured_vth(s);
      return sensor_wise_slot_decide(pool, degradation_scratch_, new_traffic);
    }
    case PolicyKind::kRrSlot: {
      const noc::SharedBufferPool& pool = *view.unit()->pool();
      const int candidate = static_cast<int>((now / config_.rr_rotation_period) %
                                             static_cast<sim::Cycle>(pool.num_slots()));
      return rr_slot_decide(pool, candidate, new_traffic);
    }
  }
  throw std::logic_error("PolicyGateController::decide: bad kind");
}

void PolicyGateController::post_cycle(sim::Cycle now) {
  const bool have_injector = injector_ != nullptr && injector_->enabled();
  // Off-epoch, fault-free calls are strict no-ops (refresh_due is false for
  // every port and update() is epoch-gated with no RNG), so an O(1) fence
  // skips the O(ports) walk until the earliest due epoch. With an injector
  // the walk runs every cycle: quarantine dwell stats accrue per cycle.
  if (!have_injector && now < post_cycle_fence_) return;
  // Sensor refresh (epoch-gated inside the bank) from the authoritative
  // stress trackers; this is the Down_Up link update point.
  const double elapsed = network_->clock().seconds_now();
  sim::Cycle fence = sim::kCycleNever;
  for (auto& [key, ctx] : ports_) {
    const bool epoch = ctx.sensors.refresh_due(now);
    noc::InputUnit& iu = network_->router(key.router).input(key.port);
    // Stress accounting is event-driven: flush this port's lazy intervals
    // through the end of the current cycle before the sensors read the
    // counters, but only at epoch boundaries — update() ignores the
    // trackers otherwise.
    if (epoch) iu.sync_stress(now + 1);
    ctx.sensors.update(now, elapsed, iu.trackers());
    fence = std::min(fence, ctx.sensors.next_refresh_cycle());
    if (!have_injector) continue;
    // Targeted plans confine the fault machinery (and its RNG draws) to
    // the ports the plan names; with an empty target list that is all of
    // them, the pre-locality behavior.
    if (!injector_->plan().targets_port(static_cast<int>(key.router),
                                        static_cast<int>(key.port)))
      continue;
    if (epoch) faulted_epoch(key, ctx);
    if (ctx.quarantined) network_->stats().add(h_quarantined_cycles_);
  }
  post_cycle_fence_ = fence;
}

sim::Cycle PolicyGateController::next_event_cycle(sim::Cycle now) {
  // Fault processes advance every cycle (per-cycle stats, RNG draws), so a
  // skip would change the fault stream: pin the horizon to `now`.
  if (injector_ != nullptr && injector_->enabled()) return now;
  // Otherwise post_cycle only acts at sensor epoch boundaries. The refresh
  // itself must be *stepped* (it reads elapsed time and draws noise RNG at
  // exactly its due cycle), so report the earliest due cycle across ports
  // and let the engine land on it.
  sim::Cycle horizon = sim::kCycleNever;
  for (const auto& [key, ctx] : ports_)
    horizon = std::min(horizon, ctx.sensors.next_refresh_cycle());
  return std::max(horizon, now);
}

void PolicyGateController::faulted_epoch(const noc::PortKey& key, PortContext& ctx) {
  sim::StatRegistry& stats = network_->stats();
  const HealthConfig& h = config_.health;
  const int node = static_cast<int>(key.router);
  const int port = static_cast<int>(key.port);
  const int num_vcs = static_cast<int>(ctx.sensors.size());

  injector_->advance_sensor_epoch(node, port, num_vcs);
  const bool delivered = !injector_->drop_down_up_report();
  if (delivered) {
    ctx.epochs_since_report = 0;
    for (int v = 0; v < num_vcs; ++v)
      ctx.effective_vths[static_cast<std::size_t>(v)] =
          injector_->corrupt_reading(node, port, v, ctx.sensors.measured_vth(static_cast<std::size_t>(v)));
  } else {
    ++ctx.epochs_since_report;
  }

  bool plausible = true;
  for (double v : ctx.effective_vths)
    if (!(v >= h.plausible_min_v && v <= h.plausible_max_v)) {
      plausible = false;
      break;
    }
  // The implausibility streak only advances on delivered reports — a
  // dropped report is the staleness watchdog's evidence, not this one's.
  if (delivered) ctx.implausible_streak = plausible ? 0 : ctx.implausible_streak + 1;

  if (!ctx.quarantined) {
    ctx.healthy_streak = 0;
    if (ctx.epochs_since_report >= h.staleness_epochs ||
        ctx.implausible_streak >= h.implausible_epochs_to_quarantine) {
      ctx.quarantined = true;
      stats.add(h_quarantines_);
    }
  } else if (delivered && plausible) {
    if (++ctx.healthy_streak >= h.healthy_epochs_to_recover) {
      ctx.quarantined = false;
      ctx.healthy_streak = 0;
      ctx.implausible_streak = 0;
      ctx.epochs_since_report = 0;
      stats.add(h_recoveries_);
    }
  } else {
    ctx.healthy_streak = 0;
  }
}

std::size_t PolicyGateController::quarantined_ports() const {
  std::size_t n = 0;
  for (const auto& [key, ctx] : ports_) n += ctx.quarantined ? 1u : 0u;
  return n;
}

double PolicyGateController::effective_vth(const noc::PortKey& key, int vc) const {
  return ports_.at(key).effective_vths.at(static_cast<std::size_t>(vc));
}

void PolicyGateController::save(sim::SnapshotWriter& w) const {
  w.u64(ports_.size());
  for (const auto& [key, ctx] : ports_) {
    ctx.sensors.save(w);
    w.f64_vec(ctx.effective_vths);
    w.b(ctx.quarantined);
    w.i64(ctx.epochs_since_report);
    w.i64(ctx.implausible_streak);
    w.i64(ctx.healthy_streak);
  }
  w.u64(held_.size());
  for (const auto& [key, held] : held_) {
    w.i64(key.first.router);
    w.u8(static_cast<std::uint8_t>(key.first.port));
    w.i64(key.second);
    noc::snapshot_save(w, held.command);
    w.u64(static_cast<std::uint64_t>(held.held_until));
    w.b(held.valid);
  }
  w.u64(static_cast<std::uint64_t>(post_cycle_fence_));
}

void PolicyGateController::load(sim::SnapshotReader& r) {
  r.expect_u64(ports_.size(), "controller port count");
  for (auto& [key, ctx] : ports_) {
    ctx.sensors.load(r);
    ctx.effective_vths = r.f64_vec();
    if (ctx.effective_vths.size() != ctx.initial_vths.size())
      throw sim::SnapshotError("controller: effective-Vth vector length differs from this "
                               "scenario's VC count");
    ctx.quarantined = r.b();
    ctx.epochs_since_report = static_cast<int>(r.i64());
    ctx.implausible_streak = static_cast<int>(r.i64());
    ctx.healthy_streak = static_cast<int>(r.i64());
  }
  held_.clear();
  const std::uint64_t held_count = r.u64();
  for (std::uint64_t i = 0; i < held_count; ++i) {
    noc::PortKey key;
    key.router = static_cast<noc::NodeId>(r.i64());
    key.port = static_cast<noc::Dir>(r.u8());
    const int first_vc = static_cast<int>(r.i64());
    HeldDecision held;
    held.command = noc::snapshot_load_gate_command(r);
    held.held_until = static_cast<sim::Cycle>(r.u64());
    held.valid = r.b();
    held_.emplace(std::make_pair(key, first_vc), held);
  }
  post_cycle_fence_ = static_cast<sim::Cycle>(r.u64());
}

}  // namespace nbtinoc::core
