#pragma once
// Long-term NBTI threshold-voltage shift model (paper Eq. 1).
//
// The paper adopts the reaction-diffusion long-term closed form from
// Bhardwaj et al. (CICC'06), as packaged by Chan et al. (DATE'11):
//
//     |dVth| = ( sqrt(Kv^2 * Tclk * alpha) / (1 - beta_t^(1/2n)) )^(2n)
//
// with n = 1/6 (H2 diffusion, Krishnan et al. IEDM'05), alpha the NBTI duty
// cycle (stress probability), Tclk the clock period, and
//
//     beta_t = 1 - (2*xi1*te + sqrt(xi2*C*(1-alpha)*Tclk))
//                  / (2*tox + sqrt(C*t))
//     C      = (1/T0) * exp(-Ea / (k*T))
//
// Units here: lengths in nm, time in seconds, voltages in volts, C in
// nm^2/s. Kv lumps the oxide-field and hole-density prefactors; we keep its
// qualitative dependencies explicit —
//
//     Kv = kv_prefactor * (Vdd - Vth) * exp(Eox/E0) * sqrt(C(T)),
//     Eox = (Vdd - Vth)/tox
//
// — and calibrate kv_prefactor against the published anchor that a PMOS
// stressed continuously (alpha = 1) at Vdd = 1.2 V shifts by ~50 mV over 10
// years [2][3]. Absolute magnitudes therefore track the literature while
// relative savings (the quantity the paper reports) depend only on the
// closed form's alpha/t dependence, which is implemented exactly.

#include <string>

namespace nbtinoc::nbti {

/// Physical parameters of the long-term model. Defaults follow the
/// predictive-model literature (Vattikonda/Wang/Bhardwaj) at a 45 nm node.
struct NbtiParams {
  double n = 1.0 / 6.0;    ///< diffusion exponent (H2)
  double tox_nm = 1.2;     ///< effective oxide thickness
  double te_nm = 1.2;      ///< equivalent thickness in the recovery term
  double xi1 = 0.9;        ///< back-diffusion fit constant
  double xi2 = 0.5;        ///< back-diffusion fit constant
  double ea_ev = 0.49;     ///< diffusion activation energy
  double inv_t0_nm2_per_s = 1e8;  ///< 1/T0 in the Arrhenius diffusivity
  double e0_v_per_nm = 0.2;       ///< field prefactor (2.0 MV/cm)
  double kv_prefactor = 2.3e-6;   ///< lumped Kv prefactor (see calibrate())
  double anchor_dvth_v = 0.050;   ///< calibration anchor: dVth at alpha=1
  double anchor_years = 10.0;     ///< ... after this many years

  /// The closed form is the long-time asymptote of the reaction-diffusion
  /// solution and has a spurious nonzero floor as t -> 0. Below this time
  /// the model follows the RD fractional power law dVth ~ t^n instead,
  /// matched continuously at the boundary, so microsecond-scale simulations
  /// report (correctly) negligible shift.
  double short_time_ramp_s = 3600.0;
};

/// Operating point at which degradation is evaluated.
struct OperatingPoint {
  double vdd_v = 1.2;
  double vth_v = 0.180;          ///< device threshold entering the Eox term
  double temperature_k = 350.0;
  double clock_period_s = 1e-9;
};

/// Evaluates the long-term closed form. Immutable after construction;
/// cheap enough to call per-buffer at stat-sampling time.
class NbtiModel {
 public:
  explicit NbtiModel(NbtiParams params = {});

  /// Builds a model whose kv_prefactor reproduces params.anchor_dvth_v at
  /// alpha = 1 after params.anchor_years at the given operating point.
  static NbtiModel calibrated(NbtiParams params, const OperatingPoint& op);

  /// |dVth| in volts for stress probability `alpha` in [0,1] after
  /// `seconds` of operation. Returns 0 for alpha <= 0 or seconds <= 0.
  double delta_vth(double alpha, double seconds, const OperatingPoint& op) const;

  /// Arrhenius diffusivity C(T) in nm^2/s.
  double diffusivity(double temperature_k) const;

  /// beta_t term of Eq. 1, clamped to [0, 1).
  double beta_t(double alpha, double seconds, const OperatingPoint& op) const;

  /// Lumped Kv (see header comment).
  double kv(const OperatingPoint& op) const;

  /// Fractional saving 1 - dVth(alpha)/dVth(alpha_ref): the paper's "net
  /// NBTI Vth saving" when alpha_ref = 1 (non-NBTI-aware baseline).
  double vth_saving(double alpha, double alpha_ref, double seconds, const OperatingPoint& op) const;

  const NbtiParams& params() const { return params_; }

  std::string describe() const;

 private:
  NbtiParams params_;
};

}  // namespace nbtinoc::nbti
