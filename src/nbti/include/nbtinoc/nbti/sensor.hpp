#pragma once
// NBTI sensor model (paper [20]: Singh et al., 45 nm multi-degradation
// sensor).
//
// Each VC buffer of a downstream input port carries one sensor; the bank
// reports the *most degraded* VC, which is all the sensor-wise policy
// consumes (one-hot `most_degraded` marker in the upstream out-VC-state).
// The model reads the buffer's true modeled Vth (initial PV sample plus the
// Eq.1 shift accumulated at the measured duty cycle) and optionally applies
// measurement quantization and Gaussian noise plus a refresh epoch, so the
// robustness of the policy to sensor error can be studied (bench X5).

#include <cstdint>
#include <vector>

#include "nbtinoc/nbti/duty_cycle.hpp"
#include "nbtinoc/nbti/model.hpp"
#include "nbtinoc/sim/clock.hpp"
#include "nbtinoc/sim/snapshot.hpp"
#include "nbtinoc/util/rng.hpp"

namespace nbtinoc::nbti {

struct SensorConfig {
  sim::Cycle epoch_cycles = 1024;  ///< refresh period; readings are stale in between
  double quantization_v = 0.0;     ///< sensor LSB; 0 = ideal (continuous)
  double noise_sigma_v = 0.0;      ///< Gaussian measurement noise; 0 = ideal
  /// Multiplies elapsed simulated seconds before evaluating Eq.1, letting
  /// short simulations emulate months of aging. 1.0 reproduces the paper
  /// (30 ms of simulated time => degradation ranking dominated by the PV
  /// initial Vth, so the most-degraded VC is constant per scenario).
  double time_acceleration = 1.0;
};

/// One sensor per buffer of an input port. Deterministic given its seed.
class NbtiSensorBank {
 public:
  /// `model` must outlive the bank (stored by pointer); the rvalue overload
  /// is deleted so passing a temporary is a compile error.
  NbtiSensorBank(std::vector<double> initial_vths, const NbtiModel& model, OperatingPoint op,
                 SensorConfig config = {}, std::uint64_t noise_seed = 0x5e7501ULL);
  NbtiSensorBank(std::vector<double> initial_vths, NbtiModel&& model, OperatingPoint op,
                 SensorConfig config = {}, std::uint64_t noise_seed = 0x5e7501ULL) = delete;

  std::size_t size() const { return initial_vths_.size(); }

  /// Refreshes measurements if the epoch boundary passed. `elapsed_seconds`
  /// is wall-clock device age (clock.seconds_now() during simulation).
  void update(sim::Cycle now, double elapsed_seconds, const StressTrackerBank& trackers);

  /// True iff update(now, ...) would refresh — the epoch boundary has
  /// passed (or no refresh has happened yet). Lets callers that post-process
  /// readings (fault corruption, health tracking) act exactly once per epoch.
  bool refresh_due(sim::Cycle now) const {
    return !refreshed_once_ || now >= last_refresh_ + config_.epoch_cycles;
  }

  /// Earliest cycle at which refresh_due() turns true — the bank's epoch
  /// fence for the fast-forward engine. A refresh draws noise RNG and
  /// re-reads elapsed time, so skipping across this cycle would shift the
  /// whole measurement schedule; the engine instead skips *to* it and steps
  /// it normally.
  sim::Cycle next_refresh_cycle() const {
    return refreshed_once_ ? last_refresh_ + config_.epoch_cycles : 0;
  }

  /// Forces a refresh regardless of epoch (used at construction/reset).
  void refresh(double elapsed_seconds, const StressTrackerBank& trackers);

  /// Index of the most degraded VC per the *sensor readings* (ties broken
  /// toward the lowest index, matching a fixed-priority comparator tree).
  std::size_t most_degraded() const { return most_degraded_; }

  /// Most degraded VC within [first, first+count) — the per-vnet comparator
  /// used when the port's VCs are partitioned into virtual networks.
  std::size_t most_degraded_in(std::size_t first, std::size_t count) const;

  /// Last sensor reading for buffer i (quantized/noisy absolute Vth).
  double measured_vth(std::size_t i) const { return measured_vths_.at(i); }

  /// Exact modeled Vth for buffer i at the given age/duty (no sensor error).
  double true_vth(std::size_t i, double elapsed_seconds, const StressTrackerBank& trackers) const;

  double initial_vth(std::size_t i) const { return initial_vths_.at(i); }
  const SensorConfig& config() const { return config_; }

  // --- checkpoint/restore ----------------------------------------------------
  /// Dynamic fields only (noise RNG, readings, refresh schedule); the
  /// initial Vth vector, model pointer and config come from reconstruction.
  void save(sim::SnapshotWriter& w) const;
  void load(sim::SnapshotReader& r);

 private:
  std::vector<double> initial_vths_;
  const NbtiModel* model_;
  OperatingPoint op_;
  SensorConfig config_;
  util::Xoshiro256 noise_rng_;
  std::vector<double> measured_vths_;
  std::size_t most_degraded_ = 0;
  sim::Cycle last_refresh_ = 0;
  bool refreshed_once_ = false;
};

}  // namespace nbtinoc::nbti
