#pragma once
// NBTI stress/recovery accounting (the paper's NBTI-duty-cycle).
//
// A VC buffer is *stressed* in every cycle it is powered — whether it holds
// flits or merely sits idle with a meaningless input vector — and *recovers*
// only while power-gated (paper §III-A). The tracker counts both, supports a
// warmup fence (counters frozen until measurement starts), and exposes the
// paper's statistic:
//
//     NBTI-duty-cycle = stress / (stress + recovery) * 100

#include <cstdint>
#include <string>
#include <vector>

#include "nbtinoc/sim/clock.hpp"

namespace nbtinoc::nbti {

/// Per-buffer stress/recovery cycle counters.
class StressTracker {
 public:
  /// Accounts one cycle. `stressed` = buffer powered (idle or active);
  /// !stressed = power-gated (recovery).
  void record_cycle(bool stressed) {
    if (!measuring_) return;
    if (stressed) ++stress_cycles_;
    else ++recovery_cycles_;
  }

  /// Bulk accounting, for components that batch cycles.
  void record_cycles(bool stressed, sim::Cycle count) {
    if (!measuring_) return;
    if (stressed) stress_cycles_ += count;
    else recovery_cycles_ += count;
  }

  /// While disabled (warmup), record_cycle is a no-op. Enabled by default.
  void set_measuring(bool measuring) { measuring_ = measuring; }
  bool measuring() const { return measuring_; }

  void reset() {
    stress_cycles_ = 0;
    recovery_cycles_ = 0;
  }

  sim::Cycle stress_cycles() const { return stress_cycles_; }
  sim::Cycle recovery_cycles() const { return recovery_cycles_; }
  sim::Cycle total_cycles() const { return stress_cycles_ + recovery_cycles_; }

  /// Stress probability alpha in [0,1]; 0 when nothing was recorded.
  double stress_probability() const {
    const sim::Cycle total = total_cycles();
    return total == 0 ? 0.0 : static_cast<double>(stress_cycles_) / static_cast<double>(total);
  }

  /// Paper statistic, in percent.
  double duty_cycle_percent() const { return stress_probability() * 100.0; }

 private:
  sim::Cycle stress_cycles_ = 0;
  sim::Cycle recovery_cycles_ = 0;
  bool measuring_ = true;
};

/// A bank of trackers, one per VC buffer of an input port, with convenience
/// accessors used by the router's input units and by the result tables.
class StressTrackerBank {
 public:
  explicit StressTrackerBank(std::size_t buffers) : trackers_(buffers) {}

  std::size_t size() const { return trackers_.size(); }
  StressTracker& at(std::size_t i) { return trackers_.at(i); }
  const StressTracker& at(std::size_t i) const { return trackers_.at(i); }

  void set_measuring(bool measuring) {
    for (auto& t : trackers_) t.set_measuring(measuring);
  }
  void reset() {
    for (auto& t : trackers_) t.reset();
  }

  std::vector<double> duty_cycles_percent() const;
  std::vector<double> stress_probabilities() const;

 private:
  std::vector<StressTracker> trackers_;
};

}  // namespace nbtinoc::nbti
