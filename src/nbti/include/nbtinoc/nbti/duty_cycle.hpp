#pragma once
// NBTI stress/recovery accounting (the paper's NBTI-duty-cycle).
//
// A VC buffer is *stressed* in every cycle it is powered — whether it holds
// flits or merely sits idle with a meaningless input vector — and *recovers*
// only while power-gated (paper §III-A). The tracker counts both, supports a
// warmup fence (counters frozen until measurement starts), and exposes the
// paper's statistic:
//
//     NBTI-duty-cycle = stress / (stress + recovery) * 100
//
// Two accounting modes share the same counters:
//  - per-cycle: record_cycle(stressed) once per simulated cycle (tests,
//    components that sample state explicitly);
//  - event-driven: note_state(stressed, now) at each gate/wake transition
//    plus sync(through) at read fences. Idle meshes then cost
//    O(transitions), not O(buffers) per cycle. The two modes produce
//    identical counts for the same state timeline (cycle c is attributed to
//    the state holding at the *end* of cycle c) but must not be mixed on
//    one tracker within one measurement window.

#include <cstdint>
#include <string>
#include <vector>

#include "nbtinoc/sim/clock.hpp"
#include "nbtinoc/sim/snapshot.hpp"

namespace nbtinoc::nbti {

/// Per-buffer stress/recovery cycle counters.
class StressTracker {
 public:
  /// Accounts one cycle. `stressed` = buffer powered (idle or active);
  /// !stressed = power-gated (recovery).
  void record_cycle(bool stressed) {
    if (!measuring_) return;
    if (stressed) ++stress_cycles_;
    else ++recovery_cycles_;
  }

  /// Bulk accounting, for components that batch cycles.
  void record_cycles(bool stressed, sim::Cycle count) {
    if (!measuring_) return;
    if (stressed) stress_cycles_ += count;
    else recovery_cycles_ += count;
  }

  // --- event-driven accounting ---------------------------------------------
  /// Declares the buffer's powered state from cycle `now` onward. Cycles
  /// [synced_until, now) are flushed under the previous state first, so a
  /// transition during cycle `now` attributes cycle `now` to the *new*
  /// state — exactly what end-of-cycle record_cycle() sampling observes.
  /// Trackers start stressed (VC buffers power up Idle) at cycle 0.
  void note_state(bool stressed, sim::Cycle now) {
    if (stressed == lazy_stressed_) return;
    sync(now);
    lazy_stressed_ = stressed;
  }

  /// Flushes the lazily-held interval: accounts cycles [synced_until,
  /// through) under the current state. Call before any counter read and
  /// before toggling the measuring fence (the fence applies to cycles by
  /// *when they elapsed*, not when they were flushed).
  void sync(sim::Cycle through) {
    if (through <= synced_until_) return;
    record_cycles(lazy_stressed_, through - synced_until_);
    synced_until_ = through;
  }

  /// First cycle not yet flushed by the event-driven path.
  sim::Cycle synced_until() const { return synced_until_; }

  /// While disabled (warmup), record_cycle is a no-op. Enabled by default.
  void set_measuring(bool measuring) { measuring_ = measuring; }
  bool measuring() const { return measuring_; }

  void reset() {
    stress_cycles_ = 0;
    recovery_cycles_ = 0;
  }

  sim::Cycle stress_cycles() const { return stress_cycles_; }
  sim::Cycle recovery_cycles() const { return recovery_cycles_; }
  sim::Cycle total_cycles() const { return stress_cycles_ + recovery_cycles_; }

  /// Stress probability alpha in [0,1]; 0 when nothing was recorded.
  double stress_probability() const {
    const sim::Cycle total = total_cycles();
    return total == 0 ? 0.0 : static_cast<double>(stress_cycles_) / static_cast<double>(total);
  }

  /// Paper statistic, in percent.
  double duty_cycle_percent() const { return stress_probability() * 100.0; }

  // --- checkpoint/restore ----------------------------------------------------
  void save(sim::SnapshotWriter& w) const {
    w.u64(static_cast<std::uint64_t>(stress_cycles_));
    w.u64(static_cast<std::uint64_t>(recovery_cycles_));
    w.u64(static_cast<std::uint64_t>(synced_until_));
    w.b(lazy_stressed_);
    w.b(measuring_);
  }
  void load(sim::SnapshotReader& r) {
    stress_cycles_ = static_cast<sim::Cycle>(r.u64());
    recovery_cycles_ = static_cast<sim::Cycle>(r.u64());
    synced_until_ = static_cast<sim::Cycle>(r.u64());
    lazy_stressed_ = r.b();
    measuring_ = r.b();
  }

 private:
  sim::Cycle stress_cycles_ = 0;
  sim::Cycle recovery_cycles_ = 0;
  // Event-driven mode: state held since synced_until_ (powered at reset).
  sim::Cycle synced_until_ = 0;
  bool lazy_stressed_ = true;
  bool measuring_ = true;
};

/// A bank of trackers, one per VC buffer of an input port, with convenience
/// accessors used by the router's input units and by the result tables.
class StressTrackerBank {
 public:
  explicit StressTrackerBank(std::size_t buffers) : trackers_(buffers) {}

  std::size_t size() const { return trackers_.size(); }
  StressTracker& at(std::size_t i) { return trackers_.at(i); }
  const StressTracker& at(std::size_t i) const { return trackers_.at(i); }

  void set_measuring(bool measuring) {
    for (auto& t : trackers_) t.set_measuring(measuring);
  }
  /// Event-driven fence: flushes every tracker's lazy interval through
  /// `through` (see StressTracker::sync).
  void sync(sim::Cycle through) {
    for (auto& t : trackers_) t.sync(through);
  }
  void reset() {
    for (auto& t : trackers_) t.reset();
  }

  std::vector<double> duty_cycles_percent() const;
  std::vector<double> stress_probabilities() const;

  void save(sim::SnapshotWriter& w) const {
    for (const auto& t : trackers_) t.save(w);
  }
  void load(sim::SnapshotReader& r) {
    for (auto& t : trackers_) t.load(r);
  }

 private:
  std::vector<StressTracker> trackers_;
};

}  // namespace nbtinoc::nbti
