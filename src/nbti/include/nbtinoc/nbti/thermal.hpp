#pragma once
// Coarse steady-state thermal model of the 2D mesh (HotSpot-lite).
//
// NBTI degradation is exponentially temperature dependent (Eq.1: C(T) is
// Arrhenius, Kv grows with T through it), so a spatial temperature gradient
// across the die changes *which* buffers age fastest. This model turns
// per-tile power into per-tile steady-state temperature:
//
//   1. local heating: T_i = T_ambient + R_theta * P_i
//   2. lateral spreading: fixed-point Jacobi iterations
//          T_i <- (1-c) * T_i^local+ambient-coupled + c * mean(neighbors)
//      which approximates the lateral thermal resistances of adjacent tiles.
//
// It is deliberately simple — enough to study thermal-gradient effects on
// the sensor-wise policy (bench X8) without a full RC solver.

#include <vector>

namespace nbtinoc::nbti {

struct ThermalParams {
  double ambient_k = 318.0;        ///< package/heatsink reference (45 C)
  double r_theta_k_per_w = 30.0;   ///< junction-to-ambient per tile
  double coupling = 0.3;           ///< lateral spreading weight in [0,1)
  int iterations = 32;             ///< Jacobi fixed-point iterations
};

class MeshThermalModel {
 public:
  MeshThermalModel(int width, int height, ThermalParams params = {});

  int width() const { return width_; }
  int height() const { return height_; }
  const ThermalParams& params() const { return params_; }

  /// Steady-state tile temperatures [K] for the given tile powers [W]
  /// (row-major, one entry per tile). Throws on size mismatch.
  std::vector<double> solve(const std::vector<double>& tile_power_w) const;

  /// Convenience: hottest tile index of a temperature map.
  static std::size_t hottest(const std::vector<double>& temperatures_k);

 private:
  int width_;
  int height_;
  ThermalParams params_;
};

}  // namespace nbtinoc::nbti
