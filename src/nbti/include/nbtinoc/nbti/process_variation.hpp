#pragma once
// Process-variation model (paper §IV-A).
//
// Within-die variation: each VC buffer is represented by the worst (highest
// |Vth|) PMOS among its transistors; the paper samples that representative
// Vth directly from a Gaussian (mean 0.180 V @45nm, sigma 5 mV [25]).
// Die-to-die variation is assumed constant within a chip [13] and modeled as
// a single additive offset. For studies beyond the paper, the sampler can
// also draw `transistors_per_buffer` devices and take the max (order
// statistics of the worst device), and can add a systematic within-die
// gradient across the mesh.

#include <cstdint>
#include <vector>

#include "nbtinoc/util/rng.hpp"

namespace nbtinoc::nbti {

struct PvConfig {
  double vth_mean_v = 0.180;
  double vth_sigma_v = 0.005;
  double die_to_die_sigma_v = 0.0;  ///< 0 reproduces the paper (constant offset folded into mean)
  int transistors_per_buffer = 1;   ///< 1 = paper mode (sample the worst device directly)
  /// Optional systematic gradient: Vth increases linearly by this much from
  /// mesh corner (0,0) to the opposite corner. 0 = paper mode.
  double systematic_span_v = 0.0;
};

/// Deterministic PV sampler. The same seed always reproduces the same
/// silicon — required so every policy is evaluated on identical Vth vectors.
class ProcessVariation {
 public:
  ProcessVariation(PvConfig config, std::uint64_t seed);

  /// Samples one representative Vth (worst PMOS) for a buffer located at
  /// normalized die coordinates (x, y) in [0,1].
  double sample_buffer_vth(double x_norm = 0.0, double y_norm = 0.0);

  /// Samples `count` buffer Vths at the same location; convenience for one
  /// input port's VC bank.
  std::vector<double> sample_bank(std::size_t count, double x_norm = 0.0, double y_norm = 0.0);

  /// The die-to-die offset drawn at construction (0 when sigma is 0).
  double die_offset_v() const { return die_offset_v_; }

  const PvConfig& config() const { return config_; }

 private:
  PvConfig config_;
  util::Xoshiro256 rng_;
  double die_offset_v_ = 0.0;
};

}  // namespace nbtinoc::nbti
