#pragma once
// Multi-year aging forecast built on the long-term model.
//
// The simulation measures each buffer's NBTI duty cycle over a (short)
// window; assuming the workload is stationary, Eq.1 extrapolates the Vth
// trajectory over device lifetime. This is how the paper converts its
// duty-cycle tables into the "net NBTI Vth saving up to 54.2%" headline.

#include <string>
#include <vector>

#include "nbtinoc/nbti/model.hpp"

namespace nbtinoc::nbti {

/// One buffer's forecast inputs.
struct BufferAgingInput {
  double initial_vth_v = 0.180;
  double alpha = 1.0;  ///< measured NBTI duty cycle (stress probability)
};

struct BufferForecast {
  double initial_vth_v = 0.0;
  double delta_vth_v = 0.0;
  double final_vth_v = 0.0;
  double saving_vs_always_on = 0.0;  ///< 1 - dVth(alpha)/dVth(1)
};

class AgingForecaster {
 public:
  AgingForecaster(const NbtiModel& model, OperatingPoint op) : model_(&model), op_(op) {}

  /// Forecast after `years` of operation at the measured duty cycle.
  BufferForecast forecast(const BufferAgingInput& input, double years) const;

  std::vector<BufferForecast> forecast_bank(const std::vector<BufferAgingInput>& inputs,
                                            double years) const;

  /// Years until the buffer's dVth crosses `dvth_budget_v` (bisection on the
  /// monotone-in-t closed form). Returns `max_years` if never crossed.
  double lifetime_years(const BufferAgingInput& input, double dvth_budget_v,
                        double max_years = 30.0) const;

  /// Equivalent age: the stress time t_eq at duty `alpha` that produces the
  /// given accumulated shift (inverse of the closed form in t, by bisection).
  /// Enables epoch-wise aging under a *changing* duty cycle: each epoch maps
  /// the accumulated shift back to an equivalent age at the epoch's duty,
  /// then advances by the epoch length. Returns 0 for dvth <= 0 and
  /// `max_seconds` if the shift is unreachable at this alpha.
  double equivalent_age_seconds(double dvth_v, double alpha, double initial_vth_v,
                                double max_seconds = 40.0 * 365.25 * 24 * 3600) const;

  /// One aging epoch: advances an accumulated shift by `epoch_seconds` of
  /// operation at duty `alpha` (equivalent-age method). alpha <= 0 freezes
  /// the shift (full recovery periods neither heal nor grow the long-term
  /// interface-trap component here — a conservative simplification).
  double advance_dvth(double dvth_v, double alpha, double epoch_seconds,
                      double initial_vth_v) const;

  const NbtiModel& model() const { return *model_; }
  const OperatingPoint& operating_point() const { return op_; }

  static double years_to_seconds(double years) { return years * 365.25 * 24.0 * 3600.0; }

 private:
  const NbtiModel* model_;
  OperatingPoint op_;
};

}  // namespace nbtinoc::nbti
