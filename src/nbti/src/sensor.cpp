#include "nbtinoc/nbti/sensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nbtinoc::nbti {

NbtiSensorBank::NbtiSensorBank(std::vector<double> initial_vths, const NbtiModel& model,
                               OperatingPoint op, SensorConfig config, std::uint64_t noise_seed)
    : initial_vths_(std::move(initial_vths)),
      model_(&model),
      op_(op),
      config_(config),
      noise_rng_(noise_seed),
      measured_vths_(initial_vths_.size(), 0.0) {
  if (initial_vths_.empty()) throw std::invalid_argument("NbtiSensorBank: need at least one buffer");
  if (config_.epoch_cycles == 0) config_.epoch_cycles = 1;
  // Initial reading with zero accumulated stress: ranking equals the PV
  // initial-Vth ranking.
  StressTrackerBank empty(initial_vths_.size());
  refresh(0.0, empty);
}

double NbtiSensorBank::true_vth(std::size_t i, double elapsed_seconds,
                                const StressTrackerBank& trackers) const {
  OperatingPoint op = op_;
  op.vth_v = initial_vths_.at(i);
  const double alpha = i < trackers.size() ? trackers.at(i).stress_probability() : 0.0;
  return initial_vths_.at(i) +
         model_->delta_vth(alpha, elapsed_seconds * config_.time_acceleration, op);
}

void NbtiSensorBank::refresh(double elapsed_seconds, const StressTrackerBank& trackers) {
  double worst = -1e9;
  std::size_t worst_idx = 0;
  for (std::size_t i = 0; i < initial_vths_.size(); ++i) {
    double v = true_vth(i, elapsed_seconds, trackers);
    if (config_.noise_sigma_v > 0.0) v += noise_rng_.next_gaussian(0.0, config_.noise_sigma_v);
    if (config_.quantization_v > 0.0)
      v = std::round(v / config_.quantization_v) * config_.quantization_v;
    measured_vths_[i] = v;
    if (v > worst) {
      worst = v;
      worst_idx = i;
    }
  }
  most_degraded_ = worst_idx;
  refreshed_once_ = true;
}

std::size_t NbtiSensorBank::most_degraded_in(std::size_t first, std::size_t count) const {
  if (first >= measured_vths_.size())
    throw std::out_of_range("NbtiSensorBank::most_degraded_in: bad range");
  const std::size_t last = std::min(first + count, measured_vths_.size());
  std::size_t worst = first;
  for (std::size_t i = first + 1; i < last; ++i)
    if (measured_vths_[i] > measured_vths_[worst]) worst = i;
  return worst;
}

void NbtiSensorBank::update(sim::Cycle now, double elapsed_seconds,
                            const StressTrackerBank& trackers) {
  if (refreshed_once_ && now < last_refresh_ + config_.epoch_cycles) return;
  last_refresh_ = now;
  refresh(elapsed_seconds, trackers);
}

void NbtiSensorBank::save(sim::SnapshotWriter& w) const {
  sim::save_rng(w, noise_rng_);
  w.f64_vec(measured_vths_);
  w.u64(most_degraded_);
  w.u64(static_cast<std::uint64_t>(last_refresh_));
  w.b(refreshed_once_);
}

void NbtiSensorBank::load(sim::SnapshotReader& r) {
  sim::load_rng(r, noise_rng_);
  measured_vths_ = r.f64_vec();
  if (measured_vths_.size() != initial_vths_.size())
    throw sim::SnapshotError("NbtiSensorBank: snapshot has " +
                             std::to_string(measured_vths_.size()) + " sensors, this bank has " +
                             std::to_string(initial_vths_.size()));
  most_degraded_ = static_cast<std::size_t>(r.u64());
  last_refresh_ = static_cast<sim::Cycle>(r.u64());
  refreshed_once_ = r.b();
}

}  // namespace nbtinoc::nbti
