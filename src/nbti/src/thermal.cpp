#include "nbtinoc/nbti/thermal.hpp"

#include <algorithm>
#include <stdexcept>

namespace nbtinoc::nbti {

MeshThermalModel::MeshThermalModel(int width, int height, ThermalParams params)
    : width_(width), height_(height), params_(params) {
  if (width < 1 || height < 1) throw std::invalid_argument("MeshThermalModel: bad mesh");
  if (params.coupling < 0.0 || params.coupling >= 1.0)
    throw std::invalid_argument("MeshThermalModel: coupling must be in [0,1)");
  if (params.iterations < 1) throw std::invalid_argument("MeshThermalModel: iterations < 1");
}

std::vector<double> MeshThermalModel::solve(const std::vector<double>& tile_power_w) const {
  const auto n = static_cast<std::size_t>(width_ * height_);
  if (tile_power_w.size() != n)
    throw std::invalid_argument("MeshThermalModel::solve: power vector size mismatch");

  // Local heating above ambient.
  std::vector<double> local(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (tile_power_w[i] < 0.0)
      throw std::invalid_argument("MeshThermalModel::solve: negative power");
    local[i] = params_.r_theta_k_per_w * tile_power_w[i];
  }

  // Lateral spreading on the temperature *rise*; ambient is the boundary.
  std::vector<double> rise = local;
  std::vector<double> next(n);
  for (int iter = 0; iter < params_.iterations; ++iter) {
    for (int y = 0; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) {
        const std::size_t i = static_cast<std::size_t>(y * width_ + x);
        double neighbor_sum = 0.0;
        int neighbors = 0;
        const auto add = [&](int nx, int ny) {
          if (nx < 0 || nx >= width_ || ny < 0 || ny >= height_) return;
          neighbor_sum += rise[static_cast<std::size_t>(ny * width_ + nx)];
          ++neighbors;
        };
        add(x - 1, y);
        add(x + 1, y);
        add(x, y - 1);
        add(x, y + 1);
        const double neighbor_mean = neighbors > 0 ? neighbor_sum / neighbors : 0.0;
        next[i] = (1.0 - params_.coupling) * local[i] + params_.coupling * neighbor_mean;
      }
    }
    rise.swap(next);
  }

  std::vector<double> temperature(n);
  for (std::size_t i = 0; i < n; ++i) temperature[i] = params_.ambient_k + rise[i];
  return temperature;
}

std::size_t MeshThermalModel::hottest(const std::vector<double>& temperatures_k) {
  if (temperatures_k.empty()) throw std::invalid_argument("hottest: empty map");
  return static_cast<std::size_t>(
      std::distance(temperatures_k.begin(),
                    std::max_element(temperatures_k.begin(), temperatures_k.end())));
}

}  // namespace nbtinoc::nbti
