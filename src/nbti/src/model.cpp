#include "nbtinoc/nbti/model.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace nbtinoc::nbti {

namespace {
constexpr double kBoltzmannEvPerK = 8.617333262e-5;
}

NbtiModel::NbtiModel(NbtiParams params) : params_(params) {
  if (params_.n <= 0.0 || params_.n >= 0.5)
    throw std::invalid_argument("NbtiModel: n must be in (0, 0.5)");
  if (params_.tox_nm <= 0.0 || params_.te_nm <= 0.0)
    throw std::invalid_argument("NbtiModel: oxide thickness must be positive");
  if (params_.xi1 * params_.te_nm >= params_.tox_nm + 1e-12) {
    // Guarantees beta_t >= 0 for all alpha and t >= one clock period.
    throw std::invalid_argument("NbtiModel: requires xi1*te <= tox");
  }
}

double NbtiModel::diffusivity(double temperature_k) const {
  return params_.inv_t0_nm2_per_s * std::exp(-params_.ea_ev / (kBoltzmannEvPerK * temperature_k));
}

double NbtiModel::kv(const OperatingPoint& op) const {
  const double overdrive = std::max(op.vdd_v - op.vth_v, 0.0);
  const double eox = overdrive / params_.tox_nm;  // V/nm
  return params_.kv_prefactor * overdrive * std::exp(eox / params_.e0_v_per_nm) *
         std::sqrt(diffusivity(op.temperature_k));
}

double NbtiModel::beta_t(double alpha, double seconds, const OperatingPoint& op) const {
  alpha = std::clamp(alpha, 0.0, 1.0);
  const double c = diffusivity(op.temperature_k);
  const double numerator = 2.0 * params_.xi1 * params_.te_nm +
                           std::sqrt(params_.xi2 * c * (1.0 - alpha) * op.clock_period_s);
  const double denominator = 2.0 * params_.tox_nm + std::sqrt(c * std::max(seconds, 0.0));
  const double beta = 1.0 - numerator / denominator;
  return std::clamp(beta, 0.0, 1.0 - 1e-12);
}

double NbtiModel::delta_vth(double alpha, double seconds, const OperatingPoint& op) const {
  alpha = std::clamp(alpha, 0.0, 1.0);
  if (alpha <= 0.0 || seconds <= 0.0) return 0.0;
  if (seconds < params_.short_time_ramp_s) {
    // Short-time regime: continue the t^n power law down from the boundary
    // where the long-term form becomes valid (see NbtiParams comment).
    const double at_boundary = delta_vth(alpha, params_.short_time_ramp_s, op);
    return at_boundary * std::pow(seconds / params_.short_time_ramp_s, params_.n);
  }
  const double beta = beta_t(alpha, seconds, op);
  const double denom = 1.0 - std::pow(beta, 1.0 / (2.0 * params_.n));
  const double k = kv(op);
  const double base = std::sqrt(k * k * op.clock_period_s * alpha) / denom;
  return std::pow(base, 2.0 * params_.n);
}

double NbtiModel::vth_saving(double alpha, double alpha_ref, double seconds,
                             const OperatingPoint& op) const {
  const double ref = delta_vth(alpha_ref, seconds, op);
  if (ref <= 0.0) return 0.0;
  return 1.0 - delta_vth(alpha, seconds, op) / ref;
}

NbtiModel NbtiModel::calibrated(NbtiParams params, const OperatingPoint& op) {
  // dVth scales as kv_prefactor^(2n); solve for the prefactor that lands on
  // the anchor exactly instead of iterating.
  params.kv_prefactor = 1.0;
  NbtiModel unit(params);
  const double seconds = params.anchor_years * 365.25 * 24.0 * 3600.0;
  const double unit_dvth = unit.delta_vth(1.0, seconds, op);
  if (unit_dvth <= 0.0) throw std::invalid_argument("NbtiModel::calibrated: degenerate anchor");
  const double ratio = params.anchor_dvth_v / unit_dvth;
  params.kv_prefactor = std::pow(ratio, 1.0 / (2.0 * params.n));
  return NbtiModel(params);
}

std::string NbtiModel::describe() const {
  std::ostringstream os;
  os << "NBTI long-term model (Eq.1): n=" << params_.n << ", tox=" << params_.tox_nm
     << "nm, Ea=" << params_.ea_ev << "eV, E0=" << params_.e0_v_per_nm
     << "V/nm, kv_prefactor=" << params_.kv_prefactor << " (anchor " << params_.anchor_dvth_v * 1e3
     << "mV @ " << params_.anchor_years << "y, alpha=1)";
  return os.str();
}

}  // namespace nbtinoc::nbti
