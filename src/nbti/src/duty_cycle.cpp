#include "nbtinoc/nbti/duty_cycle.hpp"

namespace nbtinoc::nbti {

std::vector<double> StressTrackerBank::duty_cycles_percent() const {
  std::vector<double> out;
  out.reserve(trackers_.size());
  for (const auto& t : trackers_) out.push_back(t.duty_cycle_percent());
  return out;
}

std::vector<double> StressTrackerBank::stress_probabilities() const {
  std::vector<double> out;
  out.reserve(trackers_.size());
  for (const auto& t : trackers_) out.push_back(t.stress_probability());
  return out;
}

}  // namespace nbtinoc::nbti
