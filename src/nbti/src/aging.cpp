#include "nbtinoc/nbti/aging.hpp"

#include <algorithm>

namespace nbtinoc::nbti {

BufferForecast AgingForecaster::forecast(const BufferAgingInput& input, double years) const {
  const double seconds = years_to_seconds(years);
  OperatingPoint op = op_;
  op.vth_v = input.initial_vth_v;
  BufferForecast out;
  out.initial_vth_v = input.initial_vth_v;
  out.delta_vth_v = model_->delta_vth(input.alpha, seconds, op);
  out.final_vth_v = out.initial_vth_v + out.delta_vth_v;
  const double ref = model_->delta_vth(1.0, seconds, op);
  out.saving_vs_always_on = ref > 0.0 ? 1.0 - out.delta_vth_v / ref : 0.0;
  return out;
}

std::vector<BufferForecast> AgingForecaster::forecast_bank(
    const std::vector<BufferAgingInput>& inputs, double years) const {
  std::vector<BufferForecast> out;
  out.reserve(inputs.size());
  for (const auto& input : inputs) out.push_back(forecast(input, years));
  return out;
}

double AgingForecaster::lifetime_years(const BufferAgingInput& input, double dvth_budget_v,
                                       double max_years) const {
  OperatingPoint op = op_;
  op.vth_v = input.initial_vth_v;
  const auto dvth_at = [&](double years) {
    return model_->delta_vth(input.alpha, years_to_seconds(years), op);
  };
  if (dvth_at(max_years) < dvth_budget_v) return max_years;
  double lo = 0.0;
  double hi = max_years;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (dvth_at(mid) < dvth_budget_v) lo = mid;
    else hi = mid;
  }
  return 0.5 * (lo + hi);
}

double AgingForecaster::equivalent_age_seconds(double dvth_v, double alpha,
                                               double initial_vth_v, double max_seconds) const {
  if (dvth_v <= 0.0 || alpha <= 0.0) return 0.0;
  OperatingPoint op = op_;
  op.vth_v = initial_vth_v;
  if (model_->delta_vth(alpha, max_seconds, op) <= dvth_v) return max_seconds;
  double lo = 0.0;
  double hi = max_seconds;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (model_->delta_vth(alpha, mid, op) < dvth_v) lo = mid;
    else hi = mid;
  }
  return 0.5 * (lo + hi);
}

double AgingForecaster::advance_dvth(double dvth_v, double alpha, double epoch_seconds,
                                     double initial_vth_v) const {
  if (alpha <= 0.0 || epoch_seconds <= 0.0) return dvth_v;
  OperatingPoint op = op_;
  op.vth_v = initial_vth_v;
  const double t_eq = equivalent_age_seconds(dvth_v, alpha, initial_vth_v);
  const double advanced = model_->delta_vth(alpha, t_eq + epoch_seconds, op);
  // The shift never shrinks across an epoch (long-term component).
  return advanced > dvth_v ? advanced : dvth_v;
}

}  // namespace nbtinoc::nbti
