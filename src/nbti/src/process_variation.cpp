#include "nbtinoc/nbti/process_variation.hpp"

#include <algorithm>
#include <stdexcept>

namespace nbtinoc::nbti {

ProcessVariation::ProcessVariation(PvConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  if (config_.transistors_per_buffer < 1)
    throw std::invalid_argument("ProcessVariation: transistors_per_buffer must be >= 1");
  if (config_.vth_sigma_v < 0.0 || config_.die_to_die_sigma_v < 0.0)
    throw std::invalid_argument("ProcessVariation: sigmas must be non-negative");
  if (config_.die_to_die_sigma_v > 0.0)
    die_offset_v_ = rng_.next_gaussian(0.0, config_.die_to_die_sigma_v);
}

double ProcessVariation::sample_buffer_vth(double x_norm, double y_norm) {
  double worst = -1e9;
  for (int i = 0; i < config_.transistors_per_buffer; ++i) {
    const double v = rng_.next_gaussian(config_.vth_mean_v, config_.vth_sigma_v);
    worst = std::max(worst, v);
  }
  const double systematic =
      config_.systematic_span_v * 0.5 * (std::clamp(x_norm, 0.0, 1.0) + std::clamp(y_norm, 0.0, 1.0));
  return worst + die_offset_v_ + systematic;
}

std::vector<double> ProcessVariation::sample_bank(std::size_t count, double x_norm, double y_norm) {
  std::vector<double> vths;
  vths.reserve(count);
  for (std::size_t i = 0; i < count; ++i) vths.push_back(sample_buffer_vth(x_norm, y_norm));
  return vths;
}

}  // namespace nbtinoc::nbti
