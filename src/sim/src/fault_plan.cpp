#include "nbtinoc/sim/fault_plan.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace nbtinoc::sim {

std::string to_string(SensorFaultMode mode) {
  switch (mode) {
    case SensorFaultMode::kHealthy:
      return "healthy";
    case SensorFaultMode::kStuck:
      return "stuck";
    case SensorFaultMode::kDrifting:
      return "drifting";
    case SensorFaultMode::kDead:
      return "dead";
  }
  return "?";
}

bool FaultPlan::targets_port(int node, int port) const {
  if (targets.empty()) return true;
  for (const auto& [t_node, t_port] : targets)
    if (t_node == node && t_port == port) return true;
  return false;
}

bool FaultPlan::control_enabled() const {
  return sensor_stuck_rate > 0.0 || sensor_drift_rate > 0.0 || sensor_death_rate > 0.0 ||
         gate_cmd_drop_rate > 0.0 || gate_cmd_flip_rate > 0.0 || down_up_drop_rate > 0.0 ||
         wake_fail_rate > 0.0;
}

void FaultPlan::validate() const {
  const auto check_rate = [](const char* name, double rate) {
    if (!(rate >= 0.0 && rate <= 1.0))
      throw std::invalid_argument(std::string("FaultPlan: ") + name +
                                  " must be a probability in [0,1], got " + std::to_string(rate));
  };
  check_rate("sensor_stuck_rate", sensor_stuck_rate);
  check_rate("sensor_drift_rate", sensor_drift_rate);
  check_rate("sensor_death_rate", sensor_death_rate);
  check_rate("sensor_repair_rate", sensor_repair_rate);
  check_rate("gate_cmd_drop_rate", gate_cmd_drop_rate);
  check_rate("gate_cmd_flip_rate", gate_cmd_flip_rate);
  check_rate("down_up_drop_rate", down_up_drop_rate);
  check_rate("wake_fail_rate", wake_fail_rate);
  if (sensor_stuck_rate + sensor_drift_rate + sensor_death_rate > 1.0)
    throw std::invalid_argument(
        "FaultPlan: sensor_stuck_rate + sensor_drift_rate + sensor_death_rate must not exceed 1 "
        "(they compete for the same healthy->faulty transition)");
  if (!std::isfinite(drift_step_v) || !std::isfinite(dead_reading_v))
    throw std::invalid_argument("FaultPlan: drift_step_v and dead_reading_v must be finite");
  for (const auto& [node, port] : targets)
    if (node < 0 || port < 0)
      throw std::invalid_argument("FaultPlan: targets must be non-negative (router, port) pairs");
  for (const StructuralFault& f : structural) {
    if (f.router < 0)
      throw std::invalid_argument("FaultPlan: structural fault router must be non-negative");
    if (f.cycle < 1)
      throw std::invalid_argument(
          "FaultPlan: structural fault cycle must be >= 1 (cycle 0 is construction time; "
          "schedule the kill at the first simulated cycle instead)");
  }
}

std::string FaultPlan::describe() const {
  if (!enabled()) return "fault plan: none (all rates zero)";
  std::ostringstream os;
  os << "fault plan:";
  const auto rate = [&os](const char* name, double r) {
    if (r > 0.0) os << ' ' << name << '=' << r;
  };
  rate("sensor_stuck", sensor_stuck_rate);
  rate("sensor_drift", sensor_drift_rate);
  rate("sensor_death", sensor_death_rate);
  rate("sensor_repair", sensor_repair_rate);
  rate("gate_cmd_drop", gate_cmd_drop_rate);
  rate("gate_cmd_flip", gate_cmd_flip_rate);
  rate("down_up_drop", down_up_drop_rate);
  rate("wake_fail", wake_fail_rate);
  if (!targets.empty()) os << " targets=" << targets.size() << " ports";
  if (!structural.empty()) os << " structural=" << structural.size() << " kills";
  return os.str();
}

FaultPlan FaultPlan::uniform(double rate, std::uint64_t seed_salt) {
  FaultPlan plan;
  plan.seed_salt = seed_salt;
  // The three healthy->faulty sensor transitions compete; split the budget
  // so validate()'s sum constraint holds for any rate in [0,1].
  plan.sensor_stuck_rate = rate / 3.0;
  plan.sensor_drift_rate = rate / 3.0;
  plan.sensor_death_rate = rate / 3.0;
  // Transient sensor faults (mean dwell ~10 epochs): the storm exercises
  // the recovery half of the quarantine ladder, not just the fall.
  plan.sensor_repair_rate = rate >= 0.01 ? 0.1 : rate * 10.0;
  plan.gate_cmd_drop_rate = rate;
  plan.gate_cmd_flip_rate = rate;
  plan.down_up_drop_rate = rate;
  plan.wake_fail_rate = rate;
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed) : plan_(plan), rng_(seed) {
  plan_.validate();
}

void FaultInjector::bind_stats(StatRegistry* stats) {
  stats_ = stats;
  if (stats_ == nullptr) return;
  handles_[kGateCmdDrops] = stats_->intern("fault.gate_cmd_drops");
  handles_[kGateCmdFlips] = stats_->intern("fault.gate_cmd_flips");
  handles_[kWakeFailures] = stats_->intern("fault.wake_failures");
  handles_[kDownUpDrops] = stats_->intern("fault.down_up_drops");
  handles_[kSensorStuck] = stats_->intern("fault.sensor_stuck");
  handles_[kSensorDrifting] = stats_->intern("fault.sensor_drifting");
  handles_[kSensorDead] = stats_->intern("fault.sensor_dead");
  handles_[kSensorRepairs] = stats_->intern("fault.sensor_repairs");
  handles_[kLinkKills] = stats_->intern("fault.link_kills");
  handles_[kRouterKills] = stats_->intern("fault.router_kills");
  handles_[kDroppedFlits] = stats_->intern("fault.dropped_flits");
  handles_[kPurgedPackets] = stats_->intern("fault.purged_packets");
  handles_[kRouteRegens] = stats_->intern("fault.route_regens");
  handles_[kUnroutablePackets] = stats_->intern("fault.unroutable_packets");
}

void FaultInjector::count(FaultStat stat, std::uint64_t delta) {
  if (stats_ != nullptr) stats_->add(handles_[stat], delta);
}

void FaultInjector::count_link_kill() { count(kLinkKills); }

void FaultInjector::count_router_kill() { count(kRouterKills); }

void FaultInjector::count_dropped_flits(std::uint64_t n) {
  if (n > 0) count(kDroppedFlits, n);
}

void FaultInjector::count_purged_packets(std::uint64_t n) {
  if (n > 0) count(kPurgedPackets, n);
}

void FaultInjector::count_route_regen() { count(kRouteRegens); }

void FaultInjector::count_unroutable_packets(std::uint64_t n) {
  if (n > 0) count(kUnroutablePackets, n);
}

bool FaultInjector::drop_gate_command() {
  if (plan_.gate_cmd_drop_rate <= 0.0) return false;
  const bool hit = rng_.next_bernoulli(plan_.gate_cmd_drop_rate);
  if (hit) count(kGateCmdDrops);
  return hit;
}

bool FaultInjector::flip_gate_command(int range_vcs, int* keep_vc_shift) {
  if (plan_.gate_cmd_flip_rate <= 0.0 || range_vcs <= 0) return false;
  if (!rng_.next_bernoulli(plan_.gate_cmd_flip_rate)) return false;
  // Draw even for range 1 so the stream does not depend on the range; a
  // shift of 0 on a 1-VC range is the only well-formed "corruption" there.
  *keep_vc_shift = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(range_vcs)));
  count(kGateCmdFlips);
  return true;
}

bool FaultInjector::wake_fails() {
  if (plan_.wake_fail_rate <= 0.0) return false;
  const bool hit = rng_.next_bernoulli(plan_.wake_fail_rate);
  if (hit) count(kWakeFailures);
  return hit;
}

bool FaultInjector::drop_down_up_report() {
  if (plan_.down_up_drop_rate <= 0.0) return false;
  const bool hit = rng_.next_bernoulli(plan_.down_up_drop_rate);
  if (hit) count(kDownUpDrops);
  return hit;
}

void FaultInjector::advance_sensor_epoch(int node, int port, int num_vcs) {
  const double fault_rate =
      plan_.sensor_stuck_rate + plan_.sensor_drift_rate + plan_.sensor_death_rate;
  if (fault_rate <= 0.0 && plan_.sensor_repair_rate <= 0.0) return;
  for (int vc = 0; vc < num_vcs; ++vc) {
    SiteState& site = sites_[SiteKey{node, port, vc}];
    if (site.mode == SensorFaultMode::kHealthy) {
      if (fault_rate <= 0.0 || !rng_.next_bernoulli(fault_rate)) continue;
      // Which of the competing fault classes struck, proportionally.
      const double pick = rng_.next_double() * fault_rate;
      if (pick < plan_.sensor_stuck_rate) {
        site.mode = SensorFaultMode::kStuck;
        site.stuck_latched = false;
        count(kSensorStuck);
      } else if (pick < plan_.sensor_stuck_rate + plan_.sensor_drift_rate) {
        site.mode = SensorFaultMode::kDrifting;
        site.drift_v = 0.0;
        count(kSensorDrifting);
      } else {
        site.mode = SensorFaultMode::kDead;
        count(kSensorDead);
      }
    } else {
      if (plan_.sensor_repair_rate > 0.0 && rng_.next_bernoulli(plan_.sensor_repair_rate)) {
        site = SiteState{};  // back to healthy, fault memory cleared
        count(kSensorRepairs);
        continue;
      }
      if (site.mode == SensorFaultMode::kDrifting) site.drift_v += plan_.drift_step_v;
    }
  }
}

double FaultInjector::corrupt_reading(int node, int port, int vc, double true_reading) {
  const auto it = sites_.find(SiteKey{node, port, vc});
  if (it == sites_.end()) return true_reading;
  SiteState& site = it->second;
  switch (site.mode) {
    case SensorFaultMode::kHealthy:
      return true_reading;
    case SensorFaultMode::kStuck:
      if (!site.stuck_latched) {
        site.stuck_value_v = true_reading;
        site.stuck_latched = true;
      }
      return site.stuck_value_v;
    case SensorFaultMode::kDrifting:
      return true_reading + site.drift_v;
    case SensorFaultMode::kDead:
      return plan_.dead_reading_v;
  }
  return true_reading;
}

SensorFaultMode FaultInjector::sensor_mode(int node, int port, int vc) const {
  const auto it = sites_.find(SiteKey{node, port, vc});
  return it == sites_.end() ? SensorFaultMode::kHealthy : it->second.mode;
}

std::size_t FaultInjector::faulty_sites() const {
  std::size_t n = 0;
  for (const auto& [key, site] : sites_)
    if (site.mode != SensorFaultMode::kHealthy) ++n;
  return n;
}

void FaultInjector::save(SnapshotWriter& w) const {
  save_rng(w, rng_);
  w.u64(sites_.size());
  for (const auto& [key, site] : sites_) {
    w.i64(std::get<0>(key));
    w.i64(std::get<1>(key));
    w.i64(std::get<2>(key));
    w.u8(static_cast<std::uint8_t>(site.mode));
    w.f64(site.stuck_value_v);
    w.b(site.stuck_latched);
    w.f64(site.drift_v);
  }
}

void FaultInjector::load(SnapshotReader& r) {
  load_rng(r, rng_);
  sites_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const int node = static_cast<int>(r.i64());
    const int port = static_cast<int>(r.i64());
    const int vc = static_cast<int>(r.i64());
    SiteState site;
    site.mode = static_cast<SensorFaultMode>(r.u8());
    site.stuck_value_v = r.f64();
    site.stuck_latched = r.b();
    site.drift_v = r.f64();
    sites_.emplace(SiteKey{node, port, vc}, site);
  }
}

}  // namespace nbtinoc::sim
