#include "nbtinoc/sim/snapshot.hpp"

#include <bit>
#include <cstring>

namespace nbtinoc::sim {

namespace {

std::string preview(std::string_view bytes) {
  std::string out;
  for (char c : bytes.substr(0, 16)) {
    if (c >= 0x20 && c < 0x7f) {
      out += c;
    } else {
      static const char* hex = "0123456789abcdef";
      out += "\\x";
      out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
      out += hex[static_cast<unsigned char>(c) & 0xf];
    }
  }
  return out;
}

}  // namespace

void SnapshotWriter::u8(std::uint8_t v) { data_.push_back(static_cast<char>(v)); }

void SnapshotWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) data_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void SnapshotWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) data_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void SnapshotWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void SnapshotWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void SnapshotWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  data_.append(v);
}

void SnapshotWriter::f64_vec(const std::vector<double>& v) {
  u64(v.size());
  for (double x : v) f64(x);
}

void SnapshotReader::need(std::size_t bytes, std::string_view what) const {
  if (offset_ + bytes > data_.size()) {
    throw SnapshotError("snapshot truncated: need " + std::to_string(bytes) + " byte(s) for " +
                        std::string(what) + " at offset " + std::to_string(offset_) + ", only " +
                        std::to_string(data_.size() - offset_) + " left");
  }
}

std::uint8_t SnapshotReader::u8() {
  need(1, "u8");
  return static_cast<std::uint8_t>(data_[offset_++]);
}

std::uint32_t SnapshotReader::u32() {
  need(4, "u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[offset_++])) << (8 * i);
  return v;
}

std::uint64_t SnapshotReader::u64() {
  need(8, "u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[offset_++])) << (8 * i);
  return v;
}

std::int64_t SnapshotReader::i64() { return static_cast<std::int64_t>(u64()); }

double SnapshotReader::f64() { return std::bit_cast<double>(u64()); }

std::string SnapshotReader::str() {
  const std::uint32_t len = u32();
  need(len, "string payload");
  std::string out(data_.substr(offset_, len));
  offset_ += len;
  return out;
}

std::vector<double> SnapshotReader::f64_vec() {
  const std::uint64_t n = u64();
  need(n * 8, "f64 vector payload");
  std::vector<double> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(f64());
  return out;
}

std::uint64_t SnapshotReader::expect_u64(std::uint64_t expected, std::string_view what) {
  const std::size_t at = offset_;
  const std::uint64_t got = u64();
  if (got != expected) {
    throw SnapshotError("snapshot structure mismatch: " + std::string(what) + " is " +
                        std::to_string(got) + " in the file but " + std::to_string(expected) +
                        " in this configuration (offset " + std::to_string(at) + ")");
  }
  return got;
}

void SnapshotReader::expect_end() const {
  if (!at_end()) {
    throw SnapshotError("snapshot has " + std::to_string(data_.size() - offset_) +
                        " unread trailing byte(s) at offset " + std::to_string(offset_) +
                        "; the file was written by an incompatible build");
  }
}

std::string frame_snapshot(std::string_view config_digest, std::string_view payload) {
  SnapshotWriter w;
  w.str(config_digest);
  std::string framed(kSnapshotMagic);
  SnapshotWriter header;
  header.u32(kSnapshotVersion);
  framed += header.data();
  framed += w.data();
  framed.append(payload);
  return framed;
}

namespace {

// Splits the frame into (digest, payload offset); shared by open/digest.
std::pair<std::string, std::size_t> parse_frame(std::string_view file_bytes) {
  if (file_bytes.size() < kSnapshotMagic.size() ||
      file_bytes.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    throw SnapshotError("not a snapshot file: expected magic \"" + std::string(kSnapshotMagic) +
                        "\", found \"" + preview(file_bytes) + "\"");
  }
  SnapshotReader r(file_bytes.substr(kSnapshotMagic.size()));
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError("snapshot format version mismatch: file has version " +
                        std::to_string(version) + ", this build reads version " +
                        std::to_string(kSnapshotVersion) +
                        " (re-create the snapshot with this build)");
  }
  std::string digest = r.str();
  return {std::move(digest), kSnapshotMagic.size() + r.offset()};
}

}  // namespace

SnapshotReader open_snapshot(std::string_view file_bytes, std::string_view expected_digest) {
  auto [digest, payload_at] = parse_frame(file_bytes);
  if (digest != expected_digest) {
    throw SnapshotError(
        "snapshot config mismatch: the file was saved from a different scenario/policy/workload.\n"
        "  file digest:     " +
        digest + "\n  expected digest: " + std::string(expected_digest));
  }
  return SnapshotReader(file_bytes.substr(payload_at));
}

std::string snapshot_digest(std::string_view file_bytes) { return parse_frame(file_bytes).first; }

}  // namespace nbtinoc::sim
