#include "nbtinoc/sim/stat_registry.hpp"

#include <sstream>

namespace nbtinoc::sim {

CounterHandle StatRegistry::intern(const std::string& name) {
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return CounterHandle(it->second);
  const auto idx = static_cast<std::uint32_t>(counters_.size());
  counters_.emplace_back();
  counter_index_.emplace(name, idx);
  return CounterHandle(idx);
}

DistributionHandle StatRegistry::intern_distribution(const std::string& name) {
  const auto it = distribution_index_.find(name);
  if (it != distribution_index_.end()) return DistributionHandle(it->second);
  const auto idx = static_cast<std::uint32_t>(distributions_.size());
  distributions_.emplace_back();
  distribution_index_.emplace(name, idx);
  return DistributionHandle(idx);
}

std::uint64_t StatRegistry::counter(const std::string& name) const {
  const auto it = counter_index_.find(name);
  return it == counter_index_.end() ? 0 : counters_[it->second].value;
}

bool StatRegistry::has_counter(const std::string& name) const {
  const auto it = counter_index_.find(name);
  return it != counter_index_.end() && counters_[it->second].touched;
}

const util::RunningStats* StatRegistry::distribution(const std::string& name) const {
  const auto it = distribution_index_.find(name);
  if (it == distribution_index_.end()) return nullptr;
  const DistributionSlot& slot = distributions_[it->second];
  return slot.touched ? &slot.stats : nullptr;
}

std::vector<std::string> StatRegistry::counter_names() const {
  std::vector<std::string> names;
  names.reserve(counter_index_.size());
  for (const auto& [name, idx] : counter_index_)
    if (counters_[idx].touched) names.push_back(name);
  return names;
}

std::vector<std::string> StatRegistry::distribution_names() const {
  std::vector<std::string> names;
  names.reserve(distribution_index_.size());
  for (const auto& [name, idx] : distribution_index_)
    if (distributions_[idx].touched) names.push_back(name);
  return names;
}

void StatRegistry::reset() {
  for (auto& slot : counters_) slot = CounterSlot{};
  for (auto& slot : distributions_) slot = DistributionSlot{};
}

void StatRegistry::save(SnapshotWriter& w) const {
  // By-name, in map (sorted) order: deterministic bytes, index-agnostic load.
  w.u64(counter_index_.size());
  for (const auto& [name, idx] : counter_index_) {
    w.str(name);
    w.u64(counters_[idx].value);
    w.b(counters_[idx].touched);
  }
  w.u64(distribution_index_.size());
  for (const auto& [name, idx] : distribution_index_) {
    w.str(name);
    save_stats(w, distributions_[idx].stats);
    w.b(distributions_[idx].touched);
  }
}

void StatRegistry::load(SnapshotReader& r) {
  reset();
  const std::uint64_t n_counters = r.u64();
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    const std::string name = r.str();
    const std::uint64_t value = r.u64();
    const bool touched = r.b();
    CounterSlot& slot = counters_[intern(name).idx_];
    slot.value = value;
    slot.touched = touched;
  }
  const std::uint64_t n_dists = r.u64();
  for (std::uint64_t i = 0; i < n_dists; ++i) {
    const std::string name = r.str();
    DistributionSlot& slot = distributions_[intern_distribution(name).idx_];
    load_stats(r, slot.stats);
    slot.touched = r.b();
  }
}

std::string StatRegistry::to_string() const {
  std::ostringstream os;
  for (const auto& [name, idx] : counter_index_) {
    if (!counters_[idx].touched) continue;
    os << name << " = " << counters_[idx].value << '\n';
  }
  for (const auto& [name, idx] : distribution_index_) {
    if (!distributions_[idx].touched) continue;
    const util::RunningStats& stats = distributions_[idx].stats;
    os << name << " = avg " << stats.mean() << " (n=" << stats.count() << ", min=" << stats.min()
       << ", max=" << stats.max() << ")\n";
  }
  return os.str();
}

}  // namespace nbtinoc::sim
