#include "nbtinoc/sim/stat_registry.hpp"

#include <sstream>

namespace nbtinoc::sim {

void StatRegistry::add(const std::string& name, std::uint64_t delta) { counters_[name] += delta; }

void StatRegistry::sample(const std::string& name, double value) { distributions_[name].add(value); }

std::uint64_t StatRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

bool StatRegistry::has_counter(const std::string& name) const { return counters_.count(name) != 0; }

const util::RunningStats* StatRegistry::distribution(const std::string& name) const {
  const auto it = distributions_.find(name);
  return it == distributions_.end() ? nullptr : &it->second;
}

std::vector<std::string> StatRegistry::counter_names() const {
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, _] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> StatRegistry::distribution_names() const {
  std::vector<std::string> names;
  names.reserve(distributions_.size());
  for (const auto& [name, _] : distributions_) names.push_back(name);
  return names;
}

void StatRegistry::reset() {
  counters_.clear();
  distributions_.clear();
}

std::string StatRegistry::to_string() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) os << name << " = " << value << '\n';
  for (const auto& [name, stats] : distributions_) {
    os << name << " = avg " << stats.mean() << " (n=" << stats.count() << ", min=" << stats.min()
       << ", max=" << stats.max() << ")\n";
  }
  return os.str();
}

}  // namespace nbtinoc::sim
