#include "nbtinoc/sim/stat_registry.hpp"

#include <sstream>

namespace nbtinoc::sim {

CounterHandle StatRegistry::intern(const std::string& name) {
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return CounterHandle(it->second);
  const auto idx = static_cast<std::uint32_t>(counters_.size());
  counters_.emplace_back();
  counter_index_.emplace(name, idx);
  return CounterHandle(idx);
}

DistributionHandle StatRegistry::intern_distribution(const std::string& name) {
  const auto it = distribution_index_.find(name);
  if (it != distribution_index_.end()) return DistributionHandle(it->second);
  const auto idx = static_cast<std::uint32_t>(distributions_.size());
  distributions_.emplace_back();
  distribution_index_.emplace(name, idx);
  return DistributionHandle(idx);
}

std::uint64_t StatRegistry::counter(const std::string& name) const {
  const auto it = counter_index_.find(name);
  return it == counter_index_.end() ? 0 : counters_[it->second].value;
}

bool StatRegistry::has_counter(const std::string& name) const {
  const auto it = counter_index_.find(name);
  return it != counter_index_.end() && counters_[it->second].touched;
}

const util::RunningStats* StatRegistry::distribution(const std::string& name) const {
  const auto it = distribution_index_.find(name);
  if (it == distribution_index_.end()) return nullptr;
  const DistributionSlot& slot = distributions_[it->second];
  return slot.touched ? &slot.stats : nullptr;
}

std::vector<std::string> StatRegistry::counter_names() const {
  std::vector<std::string> names;
  names.reserve(counter_index_.size());
  for (const auto& [name, idx] : counter_index_)
    if (counters_[idx].touched) names.push_back(name);
  return names;
}

std::vector<std::string> StatRegistry::distribution_names() const {
  std::vector<std::string> names;
  names.reserve(distribution_index_.size());
  for (const auto& [name, idx] : distribution_index_)
    if (distributions_[idx].touched) names.push_back(name);
  return names;
}

void StatRegistry::reset() {
  for (auto& slot : counters_) slot = CounterSlot{};
  for (auto& slot : distributions_) slot = DistributionSlot{};
}

std::string StatRegistry::to_string() const {
  std::ostringstream os;
  for (const auto& [name, idx] : counter_index_) {
    if (!counters_[idx].touched) continue;
    os << name << " = " << counters_[idx].value << '\n';
  }
  for (const auto& [name, idx] : distribution_index_) {
    if (!distributions_[idx].touched) continue;
    const util::RunningStats& stats = distributions_[idx].stats;
    os << name << " = avg " << stats.mean() << " (n=" << stats.count() << ", min=" << stats.min()
       << ", max=" << stats.max() << ")\n";
  }
  return os.str();
}

}  // namespace nbtinoc::sim
