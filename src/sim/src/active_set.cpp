#include "nbtinoc/sim/active_set.hpp"

#include <algorithm>
#include <stdexcept>

namespace nbtinoc::sim {

void ActiveSet::resize(int size) {
  if (size < 0) throw std::invalid_argument("ActiveSet::resize: negative size");
  size_ = size;
  bits_.assign((static_cast<std::size_t>(size) + 63) / 64, 0);
  count_ = 0;
}

void ActiveSet::clear() {
  std::fill(bits_.begin(), bits_.end(), std::uint64_t{0});
  count_ = 0;
}

void ActiveSet::insert_all() {
  if (size_ == 0) return;
  std::fill(bits_.begin(), bits_.end(), ~std::uint64_t{0});
  // Mask the tail word so count() and for_each agree on the id range.
  const unsigned tail = static_cast<unsigned>(size_) & 63u;
  if (tail != 0) bits_.back() = (std::uint64_t{1} << tail) - 1;
  count_ = size_;
}

void ActiveSet::swap(ActiveSet& other) noexcept {
  bits_.swap(other.bits_);
  std::swap(size_, other.size_);
  std::swap(count_, other.count_);
}

void ActiveSet::assign(const ActiveSet& other) {
  if (other.size_ != size_) throw std::invalid_argument("ActiveSet::assign: size mismatch");
  std::copy(other.bits_.begin(), other.bits_.end(), bits_.begin());
  count_ = other.count_;
}

void ActiveSet::merge(const ActiveSet& other) {
  if (other.size_ != size_) throw std::invalid_argument("ActiveSet::merge: size mismatch");
  int count = 0;
  for (std::size_t w = 0; w < bits_.size(); ++w) {
    bits_[w] |= other.bits_[w];
    count += std::popcount(bits_[w]);
  }
  count_ = count;
}

void WakeHeap::push(Cycle cycle, int id) {
  heap_.push_back(WakeEvent{cycle, id});
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const WakeEvent& a, const WakeEvent& b) { return a.cycle > b.cycle; });
}

WakeEvent WakeHeap::pop() {
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const WakeEvent& a, const WakeEvent& b) { return a.cycle > b.cycle; });
  const WakeEvent out = heap_.back();
  heap_.pop_back();
  return out;
}

}  // namespace nbtinoc::sim
