#include "nbtinoc/sim/scenario.hpp"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "nbtinoc/util/rng.hpp"

namespace nbtinoc::sim {

Technology Technology::node_45nm() {
  Technology t;
  t.vth_nominal_v = 0.180;
  t.node_nm = 45;
  return t;
}

Technology Technology::node_32nm() {
  Technology t;
  t.vth_nominal_v = 0.160;
  t.node_nm = 32;
  return t;
}

std::uint64_t Scenario::pv_seed() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "pv:%dx%d-vc%d-inj%.3f-%dnm", mesh_width, mesh_height, num_vcs,
                injection_rate, tech.node_nm);
  return util::seed_from_string(buf);
}

std::uint64_t Scenario::traffic_seed() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "traffic:%dx%d-vc%d-inj%.3f", mesh_width, mesh_height, num_vcs,
                injection_rate);
  return util::seed_from_string(buf);
}

void Scenario::use_paper_scale() {
  // Paper IV-B: 30e6 total cycles; steady state after 6e6 (4-core) or
  // 9e6 (16-core) cycles.
  warmup_cycles = cores() <= 4 ? 6'000'000 : 9'000'000;
  measure_cycles = 30'000'000 - warmup_cycles;
}

std::string Scenario::describe() const {
  std::ostringstream os;
  os << "Scenario: " << name << '\n'
     << "  topology        : " << mesh_width << "x" << mesh_height << " 2D-mesh (" << cores()
     << " tiles, Tilera-iMesh-style)\n"
     << "  router          : 3-stage wormhole, " << num_vcs << " VCs/input port, " << buffer_depth
     << " flits/VC, no packet mixing\n"
     << "  flit / link     : " << flit_width_bits << "b flit over " << link_width_bits
     << "b link (" << phits_per_flit() << " phits/flit) @ " << (1.0 / clock_period_s) / 1e9
     << " GHz\n"
     << "  packet length   : " << packet_length << " flits ("
     << packet_length * phits_per_flit() << " phits)\n"
     << "  injection       : " << injection_rate << " flits/cycle/port (synthetic)\n"
     << "  cycles          : " << warmup_cycles << " warmup + " << measure_cycles << " measured\n"
     << "  technology      : " << tech.node_nm << "nm, Vth=" << tech.vth_nominal_v
     << "V (sigma " << tech.vth_sigma_v << "), Vdd=" << tech.vdd_v << "V, T=" << tech.temperature_k
     << "K\n";
  return os.str();
}

Scenario scenario_from_properties(const std::map<std::string, std::string>& props) {
  static const std::set<std::string> known = {
      "name",          "mesh_width",    "mesh_height",     "num_vcs",
      "num_vnets",     "buffer_depth",  "flit_width_bits", "link_width_bits",
      "packet_length", "injection_rate", "wakeup_latency",  "warmup_cycles",
      "measure_cycles", "clock_ghz",     "technology_nm",   "vth_sigma_v",
      "temperature_k", "vdd_v",          "router_stages"};
  for (const auto& [key, value] : props) {
    if (!known.count(key))
      throw std::invalid_argument("scenario_from_properties: unknown key '" + key + "'");
  }
  const auto get_int = [&](const char* key, long long fallback) {
    const auto it = props.find(key);
    return it == props.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
  };
  const auto get_double = [&](const char* key, double fallback) {
    const auto it = props.find(key);
    return it == props.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  };

  Scenario s;
  const long long node = get_int("technology_nm", 45);
  if (node == 32) s.tech = Technology::node_32nm();
  else if (node == 45) s.tech = Technology::node_45nm();
  else throw std::invalid_argument("scenario_from_properties: technology_nm must be 45 or 32");

  s.mesh_width = static_cast<int>(get_int("mesh_width", s.mesh_width));
  s.mesh_height = static_cast<int>(get_int("mesh_height", s.mesh_width));
  s.num_vcs = static_cast<int>(get_int("num_vcs", s.num_vcs));
  s.num_vnets = static_cast<int>(get_int("num_vnets", s.num_vnets));
  s.buffer_depth = static_cast<int>(get_int("buffer_depth", s.buffer_depth));
  s.flit_width_bits = static_cast<int>(get_int("flit_width_bits", s.flit_width_bits));
  s.link_width_bits = static_cast<int>(get_int("link_width_bits", s.link_width_bits));
  s.packet_length = static_cast<int>(get_int("packet_length", s.packet_length));
  s.injection_rate = get_double("injection_rate", s.injection_rate);
  s.wakeup_latency = static_cast<Cycle>(get_int("wakeup_latency", 0));
  s.router_stages = static_cast<int>(get_int("router_stages", s.router_stages));
  if (s.router_stages < 3)
    throw std::invalid_argument("scenario_from_properties: router_stages must be >= 3");
  s.warmup_cycles = static_cast<Cycle>(get_int("warmup_cycles", static_cast<long long>(s.warmup_cycles)));
  s.measure_cycles =
      static_cast<Cycle>(get_int("measure_cycles", static_cast<long long>(s.measure_cycles)));
  const double ghz = get_double("clock_ghz", 1.0);
  if (ghz <= 0.0) throw std::invalid_argument("scenario_from_properties: clock_ghz must be > 0");
  s.clock_period_s = 1e-9 / ghz;
  s.tech.vth_sigma_v = get_double("vth_sigma_v", s.tech.vth_sigma_v);
  s.tech.temperature_k = get_double("temperature_k", s.tech.temperature_k);
  s.tech.vdd_v = get_double("vdd_v", s.tech.vdd_v);

  const auto name_it = props.find("name");
  if (name_it != props.end()) {
    s.name = name_it->second;
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%dcore-inj%.2f", s.cores(), s.injection_rate);
    s.name = buf;
  }
  return s;
}

Scenario Scenario::synthetic(int mesh_width, int num_vcs, double injection_rate) {
  Scenario s;
  s.mesh_width = mesh_width;
  s.mesh_height = mesh_width;
  s.num_vcs = num_vcs;
  s.injection_rate = injection_rate;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%dcore-inj%.2f", s.cores(), injection_rate);
  s.name = buf;
  return s;
}

}  // namespace nbtinoc::sim
