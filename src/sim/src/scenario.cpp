#include "nbtinoc/sim/scenario.hpp"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "nbtinoc/util/rng.hpp"

namespace nbtinoc::sim {

Technology Technology::node_45nm() {
  Technology t;
  t.vth_nominal_v = 0.180;
  t.node_nm = 45;
  return t;
}

Technology Technology::node_32nm() {
  Technology t;
  t.vth_nominal_v = 0.160;
  t.node_nm = 32;
  return t;
}

namespace {
/// Non-mesh topologies tag every seed string so each topology gets its own
/// silicon/traffic/fault streams; the mesh tag is empty, keeping every
/// pre-topology seed — and with it golden results — byte-identical.
std::string topology_seed_tag(const Scenario& s) {
  std::string tag;
  if (s.topology != "mesh") {
    tag = "-" + s.topology;
    if (s.topology == "cmesh") tag += std::to_string(s.concentration);
  }
  // The shared (DAMQ) organization changes the gateable-buffer count per
  // port, so it gets its own silicon/traffic/fault streams; partitioned
  // keeps the empty tag and with it every golden seed.
  if (s.buffer_org == "shared") tag += "-shared" + std::to_string(s.shared_reserve);
  return tag;
}
}  // namespace

std::uint64_t Scenario::pv_seed() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "pv:%dx%d-vc%d-inj%.3f-%dnm", mesh_width, mesh_height, num_vcs,
                injection_rate, tech.node_nm);
  return util::seed_from_string(buf + topology_seed_tag(*this));
}

std::uint64_t Scenario::traffic_seed() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "traffic:%dx%d-vc%d-inj%.3f", mesh_width, mesh_height, num_vcs,
                injection_rate);
  return util::seed_from_string(buf + topology_seed_tag(*this));
}

std::uint64_t Scenario::fault_seed() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "fault:%dx%d-vc%d-inj%.3f", mesh_width, mesh_height, num_vcs,
                injection_rate);
  return util::seed_from_string(buf + topology_seed_tag(*this));
}

void Scenario::validate() const {
  const auto fail = [this](const std::string& what) {
    throw std::invalid_argument("Scenario '" + name + "': " + what);
  };
  if (mesh_width < 1 || mesh_height < 1)
    fail("mesh must be at least 1x1 (got " + std::to_string(mesh_width) + "x" +
         std::to_string(mesh_height) + ")");
  if (mesh_width * mesh_height < 2)
    fail("a single-tile mesh has no links to simulate; use at least 2 tiles");
  if (topology != "mesh" && topology != "torus" && topology != "ring" && topology != "cmesh")
    fail("unknown topology '" + topology + "' (expected mesh, torus, ring, or cmesh)");
  if (num_vcs < 1) fail("num_vcs must be >= 1 (got " + std::to_string(num_vcs) + ")");
  if ((topology == "torus" || topology == "ring") && num_vcs < 2)
    fail(topology + " needs >= 2 VCs per vnet for its dateline classes (got " +
         std::to_string(num_vcs) + "); wrap-link deadlock freedom splits each vnet's VCs into "
         "pre-/post-dateline halves");
  if (topology == "torus" && (mesh_width < 2 || mesh_height < 2))
    fail("a torus needs >= 2x2 tiles so every wrap link connects distinct routers (got " +
         std::to_string(mesh_width) + "x" + std::to_string(mesh_height) +
         "); use topology=ring for one-dimensional layouts");
  if (topology == "cmesh") {
    if (concentration < 1)
      fail("cmesh concentration must be >= 1 (got " + std::to_string(concentration) + ")");
    if (mesh_width % concentration != 0)
      fail("cmesh concentration " + std::to_string(concentration) + " does not divide the " +
           std::to_string(mesh_width) + "-tile row — it would leave a partial router; use a "
           "divisor of mesh_width");
  } else if (concentration != 1) {
    fail("concentration is a cmesh knob; topology '" + topology +
         "' requires concentration 1 (got " + std::to_string(concentration) + ")");
  }
  if (routing != "dor" && routing != "xy" && routing != "yx" && routing != "west-first" &&
      routing != "odd-even")
    fail("unknown routing '" + routing + "' (expected dor, xy, yx, west-first, or odd-even)");
  if ((routing == "west-first" || routing == "odd-even") && topology != "mesh")
    fail("adaptive routing '" + routing + "' is mesh-only (topology '" + topology +
         "'); wrap-link topologies keep dimension-order routing with dateline classes");
  if ((routing == "west-first" || routing == "odd-even") && num_vcs < 2)
    fail("adaptive routing '" + routing + "' needs >= 2 VCs per vnet (got " +
         std::to_string(num_vcs) + "): one escape class (minimal XY) plus one adaptive class");
  if (num_vnets < 1) fail("num_vnets must be >= 1 (got " + std::to_string(num_vnets) + ")");
  if (buffer_depth < 1) fail("buffer_depth must be >= 1 (got " + std::to_string(buffer_depth) + ")");
  if (buffer_org != "partitioned" && buffer_org != "shared")
    fail("unknown buffer_org '" + buffer_org + "' (expected partitioned or shared)");
  if (buffer_org == "shared" && num_vcs * num_vnets < 2)
    fail("buffer_org=shared needs >= 2 VCs per port to share between (got " +
         std::to_string(num_vcs * num_vnets) + "); use the partitioned organization for a "
         "single-VC router");
  if (shared_reserve < 1)
    fail("shared_reserve must be >= 1 flit per VC (got " + std::to_string(shared_reserve) +
         "); a zero reserve lets gating starve a VC and deadlock the network");
  if (buffer_org == "shared" && shared_reserve > buffer_depth)
    fail("shared_reserve (" + std::to_string(shared_reserve) + ") exceeds buffer_depth (" +
         std::to_string(buffer_depth) + "); the pool holds num_vcs*buffer_depth flits, so the "
         "per-VC reserve cannot exceed the per-VC depth");
  if (buffer_org == "partitioned" && shared_reserve != 1)
    fail("shared_reserve is a shared-organization knob; partitioned buffers ignore it, so it "
         "must stay 1 (got " + std::to_string(shared_reserve) + ")");
  if (flit_width_bits < 1 || link_width_bits < 1)
    fail("flit_width_bits and link_width_bits must be >= 1");
  if (link_width_bits > flit_width_bits)
    fail("link_width_bits (" + std::to_string(link_width_bits) + ") wider than the flit (" +
         std::to_string(flit_width_bits) + "b) — a phit cannot exceed the flit");
  if (packet_length < 1) fail("packet_length must be >= 1 flit");
  if (!(injection_rate >= 0.0) || injection_rate > 1.0)
    fail("injection_rate must be in [0, 1] flits/cycle/port (got " +
         std::to_string(injection_rate) + ")");
  if (router_stages < 3) fail("router_stages must be >= 3 (3-stage pipeline is the minimum)");
  if (measure_cycles == 0) fail("measure_cycles must be > 0 — nothing would be measured");
  if (!(clock_period_s > 0.0)) fail("clock_period_s must be > 0");
  if (!(tech.vdd_v > 0.0)) fail("tech.vdd_v must be > 0");
  if (!(tech.temperature_k > 0.0)) fail("tech.temperature_k must be > 0");
  if (!(tech.vth_nominal_v > 0.0) || tech.vth_nominal_v >= tech.vdd_v)
    fail("tech.vth_nominal_v must be in (0, vdd)");
  if (tech.vth_sigma_v < 0.0) fail("tech.vth_sigma_v must be >= 0");
}

void Scenario::use_paper_scale() {
  // Paper IV-B: 30e6 total cycles; steady state after 6e6 (4-core) or
  // 9e6 (16-core) cycles.
  warmup_cycles = cores() <= 4 ? 6'000'000 : 9'000'000;
  measure_cycles = 30'000'000 - warmup_cycles;
}

std::string Scenario::describe() const {
  std::ostringstream os;
  os << "Scenario: " << name << '\n';
  // The mesh line is byte-identical to the pre-topology output.
  if (topology == "mesh") {
    os << "  topology        : " << mesh_width << "x" << mesh_height << " 2D-mesh (" << cores()
       << " tiles, Tilera-iMesh-style)\n";
  } else if (topology == "torus") {
    os << "  topology        : " << mesh_width << "x" << mesh_height << " 2D-torus (" << cores()
       << " tiles, wrap links, dateline VC classes)\n";
  } else if (topology == "ring") {
    os << "  topology        : " << cores() << "-tile bidirectional ring (row-major over "
       << mesh_width << "x" << mesh_height << ", dateline VC classes)\n";
  } else {
    os << "  topology        : " << mesh_width << "x" << mesh_height << " concentrated mesh ("
       << cores() << " tiles, " << concentration << " NIs/router, "
       << (mesh_width / concentration) << "x" << mesh_height << " routers)\n";
  }
  // The routing line only appears off the default, keeping DOR output
  // byte-identical to the pre-adaptive format.
  if (routing != "dor")
    os << "  routing         : " << routing
       << (routing == "yx" || routing == "xy"
               ? " dimension-order"
               : " turn-model adaptive (escape VC class + least-stressed)")
       << '\n';
  // The buffer line only appears off the default, keeping partitioned
  // output byte-identical to the pre-DAMQ format.
  if (buffer_org != "partitioned")
    os << "  buffers         : shared DAMQ pool, " << num_vcs * num_vnets * buffer_depth
       << " flits/port, " << shared_reserve << " flit(s)/VC reserved\n";
  os
     << "  router          : 3-stage wormhole, " << num_vcs << " VCs/input port, " << buffer_depth
     << " flits/VC, no packet mixing\n"
     << "  flit / link     : " << flit_width_bits << "b flit over " << link_width_bits
     << "b link (" << phits_per_flit() << " phits/flit) @ " << (1.0 / clock_period_s) / 1e9
     << " GHz\n"
     << "  packet length   : " << packet_length << " flits ("
     << packet_length * phits_per_flit() << " phits)\n"
     << "  injection       : " << injection_rate << " flits/cycle/port (synthetic)\n"
     << "  cycles          : " << warmup_cycles << " warmup + " << measure_cycles << " measured\n"
     << "  technology      : " << tech.node_nm << "nm, Vth=" << tech.vth_nominal_v
     << "V (sigma " << tech.vth_sigma_v << "), Vdd=" << tech.vdd_v << "V, T=" << tech.temperature_k
     << "K\n";
  return os.str();
}

Scenario scenario_from_properties(const std::map<std::string, std::string>& props) {
  static const std::set<std::string> known = {
      "name",          "mesh_width",    "mesh_height",     "topology",
      "routing",
      "concentration", "num_vcs",       "num_vnets",       "buffer_depth",
      "buffer_org",    "shared_reserve",
      "flit_width_bits", "link_width_bits", "packet_length", "injection_rate",
      "wakeup_latency", "warmup_cycles", "measure_cycles",  "clock_ghz",
      "technology_nm", "vth_sigma_v",    "temperature_k",   "vdd_v",
      "router_stages"};
  for (const auto& [key, value] : props) {
    if (!known.count(key))
      throw std::invalid_argument("scenario_from_properties: unknown key '" + key + "'");
  }
  const auto get_int = [&](const char* key, long long fallback) {
    const auto it = props.find(key);
    return it == props.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
  };
  const auto get_double = [&](const char* key, double fallback) {
    const auto it = props.find(key);
    return it == props.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  };

  Scenario s;
  const long long node = get_int("technology_nm", 45);
  if (node == 32) s.tech = Technology::node_32nm();
  else if (node == 45) s.tech = Technology::node_45nm();
  else throw std::invalid_argument("scenario_from_properties: technology_nm must be 45 or 32");

  s.mesh_width = static_cast<int>(get_int("mesh_width", s.mesh_width));
  s.mesh_height = static_cast<int>(get_int("mesh_height", s.mesh_width));
  if (const auto it = props.find("topology"); it != props.end()) s.topology = it->second;
  if (const auto it = props.find("routing"); it != props.end()) s.routing = it->second;
  s.concentration = static_cast<int>(get_int("concentration", s.concentration));
  s.num_vcs = static_cast<int>(get_int("num_vcs", s.num_vcs));
  s.num_vnets = static_cast<int>(get_int("num_vnets", s.num_vnets));
  s.buffer_depth = static_cast<int>(get_int("buffer_depth", s.buffer_depth));
  if (const auto it = props.find("buffer_org"); it != props.end()) s.buffer_org = it->second;
  s.shared_reserve = static_cast<int>(get_int("shared_reserve", s.shared_reserve));
  s.flit_width_bits = static_cast<int>(get_int("flit_width_bits", s.flit_width_bits));
  s.link_width_bits = static_cast<int>(get_int("link_width_bits", s.link_width_bits));
  s.packet_length = static_cast<int>(get_int("packet_length", s.packet_length));
  s.injection_rate = get_double("injection_rate", s.injection_rate);
  const long long wakeup = get_int("wakeup_latency", 0);
  // Cycle is unsigned: a negative value would silently wrap to ~2^64.
  if (wakeup < 0)
    throw std::invalid_argument("scenario_from_properties: wakeup_latency must be >= 0");
  s.wakeup_latency = static_cast<Cycle>(wakeup);
  s.router_stages = static_cast<int>(get_int("router_stages", s.router_stages));
  if (s.router_stages < 3)
    throw std::invalid_argument("scenario_from_properties: router_stages must be >= 3");
  s.warmup_cycles = static_cast<Cycle>(get_int("warmup_cycles", static_cast<long long>(s.warmup_cycles)));
  s.measure_cycles =
      static_cast<Cycle>(get_int("measure_cycles", static_cast<long long>(s.measure_cycles)));
  const double ghz = get_double("clock_ghz", 1.0);
  if (ghz <= 0.0) throw std::invalid_argument("scenario_from_properties: clock_ghz must be > 0");
  s.clock_period_s = 1e-9 / ghz;
  s.tech.vth_sigma_v = get_double("vth_sigma_v", s.tech.vth_sigma_v);
  s.tech.temperature_k = get_double("temperature_k", s.tech.temperature_k);
  s.tech.vdd_v = get_double("vdd_v", s.tech.vdd_v);

  const auto name_it = props.find("name");
  if (name_it != props.end()) {
    s.name = name_it->second;
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%dcore-inj%.2f", s.cores(), s.injection_rate);
    s.name = buf;
  }
  s.validate();
  return s;
}

Scenario Scenario::synthetic(int mesh_width, int num_vcs, double injection_rate) {
  Scenario s;
  s.mesh_width = mesh_width;
  s.mesh_height = mesh_width;
  s.num_vcs = num_vcs;
  s.injection_rate = injection_rate;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%dcore-inj%.2f", s.cores(), injection_rate);
  s.name = buf;
  return s;
}

}  // namespace nbtinoc::sim
