#pragma once
// Deterministic fault injection for the gating control path.
//
// The paper's sensor-wise policy assumes a perfect control fabric: sensors
// always report plausible Vth values, the Up_Down/Down_Up links never lose
// a command, and a gated buffer always wakes within `wakeup_latency`. Real
// NBTI sensors age and fail along with the buffers they watch (OptGM; the
// flip-flop write-failure literature), so the simulator can inject faults
// into exactly that control plane and nothing else — the flit datapath is
// never corrupted, which is what lets the invariant checker demand zero
// flit loss under arbitrary fault storms.
//
// Fault taxonomy (all probabilities are per evaluation point):
//   sensor sites (one per VC buffer, evaluated once per Down_Up refresh
//   epoch of the owning port):
//     stuck    — the reading freezes at its value when the fault strikes
//     drifting — the reading gains `drift_step_v` every epoch
//     dead     — the reading pegs at `dead_reading_v` (a rail)
//     repair   — any faulty site returns to healthy (transient faults)
//   control links:
//     gate_cmd_drop — an Up_Down GateCommand is lost in flight
//     gate_cmd_flip — a delivered GateCommand is corrupted (keep_vc
//                     rotated within its vnet range / enable toggled on
//                     with an arbitrary in-range keep_vc); corrupted
//                     commands stay well-formed, they are just *wrong*
//     down_up_drop  — one refresh epoch's Down_Up report is lost; the
//                     upstream keeps acting on stale readings
//   wake handshake:
//     wake_fail — a gated buffer misses its wakeup deadline; the wake is
//                 a no-op this cycle and is retried when the command is
//                 re-issued
//
// Determinism contract: a FaultInjector owns a dedicated Xoshiro256 stream
// seeded from {scenario, plan} alone, and every draw happens at a fixed
// point of the (deterministic) simulation schedule. A given
// {scenario, policy, plan} therefore replays bit-exactly — including under
// SweepRunner at any worker count, because each sweep point builds its own
// injector. An all-zero plan is never installed at all (`enabled()` is
// false), so zero-rate runs are byte-identical to runs without this
// subsystem.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "nbtinoc/sim/clock.hpp"
#include "nbtinoc/sim/snapshot.hpp"
#include "nbtinoc/sim/stat_registry.hpp"
#include "nbtinoc/util/rng.hpp"

namespace nbtinoc::sim {

/// Health of one sensor site as the fault process sees it.
enum class SensorFaultMode { kHealthy, kStuck, kDrifting, kDead };

std::string to_string(SensorFaultMode mode);

/// One scheduled permanent *data-plane* failure. Unlike the probabilistic
/// control-plane processes below, structural faults are explicit events at
/// fixed cycles: every scheduler mode (stepped, fast-forward, active-set)
/// applies them at the start of exactly that cycle, which is what keeps the
/// three execution modes bit-identical through a kill.
struct StructuralFault {
  Cycle cycle = 0;  ///< applied at the start of this cycle
  int router = 0;   ///< router owning the failed resource
  /// Output direction of the link that dies (the reverse direction dies with
  /// it — a failed physical channel takes both wires). kWholeRouter (< 0)
  /// kills the router itself: all its links, ports and local terminals.
  int port = kWholeRouter;

  static constexpr int kWholeRouter = -1;

  bool kills_router() const { return port < 0; }
};

/// Declarative description of one fault storm. All rates default to zero;
/// a zero plan is a provable no-op (see golden_test).
struct FaultPlan {
  /// Extra salt folded into the injector seed, so one scenario can be
  /// replayed under several independent storms.
  std::uint64_t seed_salt = 0;

  // --- sensor-site fault process (per site, per refresh epoch) -------------
  double sensor_stuck_rate = 0.0;   ///< P(healthy -> stuck)
  double sensor_drift_rate = 0.0;   ///< P(healthy -> drifting)
  double sensor_death_rate = 0.0;   ///< P(healthy -> dead)
  double sensor_repair_rate = 0.0;  ///< P(faulty -> healthy)
  double drift_step_v = 0.002;      ///< added to a drifting reading per epoch
  double dead_reading_v = 0.0;      ///< rail a dead sensor reports

  // --- control-link faults -------------------------------------------------
  double gate_cmd_drop_rate = 0.0;  ///< per delivered Up_Down command
  double gate_cmd_flip_rate = 0.0;  ///< per delivered Up_Down command
  double down_up_drop_rate = 0.0;   ///< per port refresh epoch
  double wake_fail_rate = 0.0;      ///< per wake attempt on a gated buffer

  // --- fault locality ------------------------------------------------------
  /// Restricts the storm to these (router, input port) sites; empty (the
  /// default) means every site, the pre-locality behavior. Targeting is
  /// what lets the active-set scheduler keep parking the healthy part of
  /// the fabric: only targeted routers are pinned active.
  std::vector<std::pair<int, int>> targets;

  // --- structural (data-plane) faults --------------------------------------
  /// Permanent link / router kills at fixed cycles. Unordered here; the
  /// network sorts by (cycle, router, port) at install time so the apply
  /// order is deterministic regardless of how the plan was built.
  std::vector<StructuralFault> structural;

  /// True when the storm covers this (router, port) site (always true with
  /// an empty target list).
  bool targets_port(int node, int port) const;

  /// True when any *control-plane* rate is nonzero. Control faults are the
  /// probabilistic processes that pin targeted routers and disable
  /// quiescence skipping; structural faults do not (they are fixed-cycle
  /// events the schedulers fence on explicitly).
  bool control_enabled() const;

  /// True when the plan schedules any structural kill.
  bool structural_enabled() const { return !structural.empty(); }

  /// True when installing an injector could ever change a run (control or
  /// structural). run_experiment only wires the injector when enabled.
  bool enabled() const { return control_enabled() || structural_enabled(); }

  /// Throws std::invalid_argument on rates outside [0,1] or non-finite
  /// voltage parameters.
  void validate() const;

  /// One-line human-readable summary of the nonzero rates.
  std::string describe() const;

  /// Uniform rate across every fault class — the bench sweep knob.
  static FaultPlan uniform(double rate, std::uint64_t seed_salt = 0);
};

/// Runtime half of the subsystem: owns the dedicated RNG stream plus the
/// per-site sensor fault state machines, and counts every injected event
/// into an optional StatRegistry under "fault.*" keys. The class is
/// noc-agnostic (plain node/port/vc ints) so it can live below the NoC in
/// the layer stack; the noc/core layers translate their types at the hook
/// sites.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, std::uint64_t seed);

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.enabled(); }

  /// Counter sink for fault events ("fault.gate_cmd_drops", ...). Pass
  /// nullptr to detach. Counting is side-effect-only: it never changes
  /// what the injector decides. All event keys are interned here once so
  /// the per-event hooks (which run inside the gating hot path) never hash
  /// a string.
  void bind_stats(StatRegistry* stats);

  // --- Up_Down link (one call per delivered GateCommand) -------------------
  /// True: the command is lost in flight.
  bool drop_gate_command();
  /// True: corrupt the delivered command. `range_vcs` is the size of the
  /// command's vnet subrange; on true, *keep_vc_shift in [0, range_vcs) is
  /// the rotation to apply to a valid keep_vc (or the absolute local VC to
  /// enable when the original command kept nothing awake). Corrupted
  /// commands remain structurally valid for the range.
  bool flip_gate_command(int range_vcs, int* keep_vc_shift);

  // --- wake handshake ------------------------------------------------------
  /// True: this cycle's wake of a gated buffer fails and must be retried.
  bool wake_fails();

  // --- Down_Up link (one call per port refresh epoch) ----------------------
  /// True: the whole report is lost; the port's readings stay stale.
  bool drop_down_up_report();

  // --- structural fault accounting (events applied by the network) ---------
  /// The network applies the kills itself (it owns the wiring); these hooks
  /// only count what happened so the "fault.*" counters tell the story.
  void count_link_kill();
  void count_router_kill();
  /// Flits purged from dead channels/buffers during a drain; the invariant
  /// checker reads the same total from the network side.
  void count_dropped_flits(std::uint64_t n);
  /// Whole packets purged mid-flight (their remaining flits are dropped at
  /// the source of truth, wherever they sit).
  void count_purged_packets(std::uint64_t n);
  /// Route-table regenerations triggered by structural faults.
  void count_route_regen();
  /// Packets discarded at generation because no route survives to their
  /// destination (dead terminal or disconnected fabric).
  void count_unroutable_packets(std::uint64_t n);

  // --- sensor fault process ------------------------------------------------
  /// Steps the fault state machine of every site of one port by one epoch.
  /// Call exactly once per *delivered* refresh epoch, before reading.
  void advance_sensor_epoch(int node, int port, int num_vcs);
  /// The reading the faulty sensor actually reports for `true_reading`.
  /// Pure given the site state (no RNG draw).
  double corrupt_reading(int node, int port, int vc, double true_reading);
  SensorFaultMode sensor_mode(int node, int port, int vc) const;
  /// Number of sites currently not healthy.
  std::size_t faulty_sites() const;

  // --- checkpoint/restore ----------------------------------------------------
  /// Dynamic state only: the RNG stream and the per-site fault machines.
  /// The plan and the stat bindings come from reconstruction.
  void save(SnapshotWriter& w) const;
  void load(SnapshotReader& r);

 private:
  struct SiteState {
    SensorFaultMode mode = SensorFaultMode::kHealthy;
    double stuck_value_v = 0.0;  ///< reading held while stuck
    bool stuck_latched = false;  ///< stuck_value_v captured yet?
    double drift_v = 0.0;        ///< accumulated drift while drifting
  };
  using SiteKey = std::tuple<int, int, int>;  ///< (node, port, vc)

  /// Indexes into handles_ (one per "fault.*" event counter).
  enum FaultStat : std::size_t {
    kGateCmdDrops = 0,
    kGateCmdFlips,
    kWakeFailures,
    kDownUpDrops,
    kSensorStuck,
    kSensorDrifting,
    kSensorDead,
    kSensorRepairs,
    kLinkKills,
    kRouterKills,
    kDroppedFlits,
    kPurgedPackets,
    kRouteRegens,
    kUnroutablePackets,
    kNumFaultStats,
  };

  void count(FaultStat stat, std::uint64_t delta = 1);

  FaultPlan plan_;
  util::Xoshiro256 rng_;
  StatRegistry* stats_ = nullptr;
  std::array<CounterHandle, kNumFaultStats> handles_{};
  std::map<SiteKey, SiteState> sites_;
};

}  // namespace nbtinoc::sim
