#pragma once

#include <algorithm>
#include <cstdint>

#include "nbtinoc/sim/clock.hpp"

namespace nbtinoc::sim {

// Sentinel horizon: "this component will never act again on its own".
// Using the max Cycle value keeps min-aggregation branch-free; callers must
// clamp against their own end fence before advancing a Clock by the result.
inline constexpr Cycle kCycleNever = ~Cycle{0};

// Min-aggregator for next-event queries plus bookkeeping for how much work
// fast-forwarding actually saved.  One instance lives in noc::Network; the
// sim layer owns the type so traffic/ and core/ can name kCycleNever and the
// skip counters without depending on noc/.
//
// Usage per quiescent pause:
//   EventHorizon h(now);
//   h.consider(source->next_event_cycle(now));
//   h.consider(controller->next_event_cycle(now));
//   Cycle target = std::min(h.horizon(), end_fence);
//   if (target > now) { clock.advance(target - now); stats.note_skip(...); }
//
// consider() clamps each proposal to `now` — a component may conservatively
// answer a cycle in the past ("I can't prove anything"), which must never
// move time backwards.
class EventHorizon {
 public:
  explicit EventHorizon(Cycle now) : now_(now), horizon_(kCycleNever) {}

  void consider(Cycle proposal) { horizon_ = std::min(horizon_, std::max(proposal, now_)); }

  Cycle now() const { return now_; }
  Cycle horizon() const { return horizon_; }

 private:
  Cycle now_;
  Cycle horizon_;
};

// Counters describing how often the fast-forward engine engaged and how many
// cycles it elided.  Monotonic over the life of a Network (not reset with
// StatRegistry) — benchmarks and tests read them to prove skipping happened.
struct SkipStats {
  std::uint64_t skips = 0;           // number of fast-forward jumps taken
  std::uint64_t cycles_skipped = 0;  // total cycles elided across all jumps

  void note_skip(Cycle span) {
    ++skips;
    cycles_skipped += span;
  }
};

}  // namespace nbtinoc::sim
