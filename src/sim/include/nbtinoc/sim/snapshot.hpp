#pragma once
// Versioned binary checkpoint format for mid-run save/restore.
//
// A snapshot captures every bit of observable simulation state — RNG
// streams, per-transistor Vth, duty-cycle accumulators, controller state,
// buffers, credits, in-flight channel payloads — so that a run resumed at
// cycle N is bit-identical to one that never stopped (ARCHITECTURE.md §13).
//
// Layout: the 8-byte magic "NBTISNAP", a u32 format version, a
// config-digest string (canonical textual encoding of every knob that
// shapes the simulated object graph), then class-by-class payload in a
// fixed order. All integers are little-endian; doubles are IEEE-754 bit
// patterns moved through u64. Strings are u32 length + raw bytes.
//
// Stateful classes implement
//     void save(sim::SnapshotWriter&) const;
//     void load(sim::SnapshotReader&);
// `load` is only called on an object freshly constructed from the *same*
// Scenario/policy/workload as the saved run (the digest enforces this), so
// loaders restore dynamic fields only and trust structural ones.
//
// Every decode error throws sim::SnapshotError with an actionable message
// (what was expected, what was found, at which byte offset).

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "nbtinoc/util/rng.hpp"
#include "nbtinoc/util/stats.hpp"

namespace nbtinoc::sim {

/// Raised on malformed, truncated, version- or config-mismatched snapshots.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// First 8 bytes of every snapshot file.
inline constexpr std::string_view kSnapshotMagic = "NBTISNAP";
/// Bump on any layout change; readers reject other versions outright.
/// v2: GateCommand slot_form flag + shared-pool port state (ARCHITECTURE §15).
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Appends primitives to a growing byte buffer (little-endian).
class SnapshotWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v);
  void str(std::string_view v);

  /// Convenience for the common vector<double> payloads (Vth banks).
  void f64_vec(const std::vector<double>& v);

  const std::string& data() const { return data_; }
  std::string take() { return std::move(data_); }

 private:
  std::string data_;
};

/// Sequential decoder over a snapshot byte buffer. Throws SnapshotError on
/// truncation; offsets in messages are absolute byte positions.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  bool b() { return u8() != 0; }
  double f64();
  std::string str();
  std::vector<double> f64_vec();

  /// Checked variant: reads a u64 and throws (with `what` in the message)
  /// unless it equals `expected`. Used for structural counts that the
  /// fresh object graph already determines.
  std::uint64_t expect_u64(std::uint64_t expected, std::string_view what);

  std::size_t offset() const { return offset_; }
  bool at_end() const { return offset_ == data_.size(); }
  /// Throws unless the whole buffer was consumed (guards against silently
  /// ignoring trailing state from a mismatched build).
  void expect_end() const;

 private:
  void need(std::size_t bytes, std::string_view what) const;

  std::string_view data_;
  std::size_t offset_ = 0;
};

/// Frames a payload with magic + version + config digest.
/// `config_digest` must be a deterministic encoding of everything that
/// shapes the saved object graph (scenario, policy, workload, faults...).
std::string frame_snapshot(std::string_view config_digest, std::string_view payload);

/// Validates magic/version/digest and returns a reader positioned at the
/// payload. Mismatches throw SnapshotError naming both sides.
SnapshotReader open_snapshot(std::string_view file_bytes, std::string_view expected_digest);

/// Reads only the embedded config digest (for tooling/error messages).
std::string snapshot_digest(std::string_view file_bytes);

// --- helpers for the two util types every layer serializes -------------------

inline void save_rng(SnapshotWriter& w, const util::Xoshiro256& rng) {
  const auto st = rng.state();
  for (std::uint64_t word : st.s) w.u64(word);
  w.b(st.has_cached_gaussian);
  w.f64(st.cached_gaussian);
}

inline void load_rng(SnapshotReader& r, util::Xoshiro256& rng) {
  util::Xoshiro256::State st;
  for (std::uint64_t& word : st.s) word = r.u64();
  st.has_cached_gaussian = r.b();
  st.cached_gaussian = r.f64();
  rng.set_state(st);
}

inline void save_stats(SnapshotWriter& w, const util::RunningStats& stats) {
  const auto st = stats.state();
  w.u64(st.count);
  w.f64(st.mean);
  w.f64(st.m2);
  w.f64(st.sum);
  w.f64(st.min);
  w.f64(st.max);
}

inline void load_stats(SnapshotReader& r, util::RunningStats& stats) {
  util::RunningStats::State st;
  st.count = static_cast<std::size_t>(r.u64());
  st.mean = r.f64();
  st.m2 = r.f64();
  st.sum = r.f64();
  st.min = r.f64();
  st.max = r.f64();
  stats.set_state(st);
}

}  // namespace nbtinoc::sim
