#pragma once
// Named counters and samples accumulated during simulation. The registry
// gives every component a flat, queryable view of what happened during a run
// (flits injected/ejected, VA grants, power-gating transitions, ...), which
// the tests use to assert invariants such as flit conservation.
//
// Hot-path components intern their counter names once at wiring time and
// afterwards bump a dense slot through a CounterHandle — no string hashing
// or map lookup per event. The string-keyed API remains for reporting,
// tests, and cold paths; both views address the same dense storage.
// reset() zeroes the dense values but never invalidates handles.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nbtinoc/sim/snapshot.hpp"
#include "nbtinoc/util/stats.hpp"

namespace nbtinoc::sim {

class StatRegistry;

/// Opaque dense index of an interned counter. Default-constructed handles
/// are invalid; handles stay valid across StatRegistry::reset() for the
/// lifetime of the registry that issued them.
class CounterHandle {
 public:
  CounterHandle() = default;
  bool valid() const { return idx_ != kInvalid; }

 private:
  friend class StatRegistry;
  explicit CounterHandle(std::uint32_t idx) : idx_(idx) {}
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t idx_ = kInvalid;
};

/// Opaque dense index of an interned distribution (same lifetime contract
/// as CounterHandle).
class DistributionHandle {
 public:
  DistributionHandle() = default;
  bool valid() const { return idx_ != kInvalid; }

 private:
  friend class StatRegistry;
  explicit DistributionHandle(std::uint32_t idx) : idx_(idx) {}
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t idx_ = kInvalid;
};

class StatRegistry {
 public:
  // --- interned hot path ----------------------------------------------------
  /// Returns the dense handle for `name`, creating the slot on first use.
  /// Idempotent: interning the same name twice yields the same handle.
  CounterHandle intern(const std::string& name);
  DistributionHandle intern_distribution(const std::string& name);

  void add(CounterHandle handle, std::uint64_t delta = 1) {
    CounterSlot& slot = counters_[handle.idx_];
    slot.value += delta;
    slot.touched = true;
  }
  void sample(DistributionHandle handle, double value) {
    DistributionSlot& slot = distributions_[handle.idx_];
    slot.stats.add(value);
    slot.touched = true;
  }
  std::uint64_t counter(CounterHandle handle) const { return counters_[handle.idx_].value; }

  // --- string-keyed API (reporting, tests, cold paths) ----------------------
  /// Adds `delta` to the named counter (creating it at zero).
  void add(const std::string& name, std::uint64_t delta = 1) { add(intern(name), delta); }
  /// Records a sample into the named distribution.
  void sample(const std::string& name, double value) { sample(intern_distribution(name), value); }

  std::uint64_t counter(const std::string& name) const;
  bool has_counter(const std::string& name) const;
  const util::RunningStats* distribution(const std::string& name) const;

  /// Names of counters touched since construction or the last reset():
  /// zeroed-but-untouched interned slots are not reported, so reset()
  /// preserves the pre-interning observable behavior exactly.
  std::vector<std::string> counter_names() const;
  std::vector<std::string> distribution_names() const;

  /// Zeroes every counter and distribution. Dense storage and the name
  /// index are preserved: handles held by wired components remain valid and
  /// keep addressing the same (now zero) slots.
  void reset();

  /// Multi-line "name = value" dump, sorted by name; used by examples.
  std::string to_string() const;

  // --- checkpoint/restore ----------------------------------------------------
  /// Serializes every slot by *name* (values + touched flags), so restore
  /// works into a freshly wired registry whose dense indices may differ.
  /// Names the resumed registry has not interned yet (lazily created
  /// string-keyed stats) are interned on load.
  void save(SnapshotWriter& w) const;
  void load(SnapshotReader& r);

 private:
  struct CounterSlot {
    std::uint64_t value = 0;
    bool touched = false;  ///< written since construction / last reset()
  };
  struct DistributionSlot {
    util::RunningStats stats;
    bool touched = false;
  };

  std::vector<CounterSlot> counters_;
  std::vector<DistributionSlot> distributions_;
  // Name -> dense index; std::map keeps reporting order sorted by name.
  std::map<std::string, std::uint32_t> counter_index_;
  std::map<std::string, std::uint32_t> distribution_index_;
};

}  // namespace nbtinoc::sim
