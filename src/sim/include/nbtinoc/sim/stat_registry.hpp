#pragma once
// Named counters and samples accumulated during simulation. The registry
// gives every component a flat, queryable view of what happened during a run
// (flits injected/ejected, VA grants, power-gating transitions, ...), which
// the tests use to assert invariants such as flit conservation.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nbtinoc/util/stats.hpp"

namespace nbtinoc::sim {

class StatRegistry {
 public:
  /// Adds `delta` to the named counter (creating it at zero).
  void add(const std::string& name, std::uint64_t delta = 1);
  /// Records a sample into the named distribution.
  void sample(const std::string& name, double value);

  std::uint64_t counter(const std::string& name) const;
  bool has_counter(const std::string& name) const;
  const util::RunningStats* distribution(const std::string& name) const;

  std::vector<std::string> counter_names() const;
  std::vector<std::string> distribution_names() const;

  void reset();

  /// Multi-line "name = value" dump, sorted by name; used by examples.
  std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, util::RunningStats> distributions_;
};

}  // namespace nbtinoc::sim
