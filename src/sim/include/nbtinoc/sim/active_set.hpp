#pragma once
// Dense component activity tracking for the event-driven scheduler.
//
// ActiveSet is a fixed-size bitmap over component ids (routers or NIs)
// supporting O(1) insert/contains and ascending-id iteration by word-wise
// bit scan. Ascending order matters: the scheduler must visit active
// components in exactly the order the full per-cycle walk would, so every
// RNG draw, arbiter rotation, and stat bump lands in the same sequence.
//
// WakeHeap is a preallocated binary min-heap of (cycle, id) wake events for
// wake-ups landing further out than the scheduler's short next-cycle ring
// (source fires after an idle stretch, replies posted with a service
// delay). Duplicate and stale entries are permitted — waking an already
// parked-and-idle component is a no-op — so producers never need to search
// or decrease-key; correctness only requires that no wake is *missing*.
//
// Neither structure allocates in steady state: the bitmap is sized once
// and the heap vector's capacity ratchets during warmup.

#include <bit>
#include <cstdint>
#include <vector>

#include "nbtinoc/sim/clock.hpp"
#include "nbtinoc/sim/event_horizon.hpp"

namespace nbtinoc::sim {

class ActiveSet {
 public:
  /// Sizes the set for ids [0, size) and clears it.
  void resize(int size);

  void insert(int id) {
    const auto word = static_cast<std::size_t>(id) >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (static_cast<unsigned>(id) & 63u);
    if ((bits_[word] & bit) == 0) {
      bits_[word] |= bit;
      ++count_;
    }
  }

  bool contains(int id) const {
    const auto word = static_cast<std::size_t>(id) >> 6;
    return (bits_[word] >> (static_cast<unsigned>(id) & 63u)) & 1u;
  }

  bool empty() const { return count_ == 0; }
  int count() const { return count_; }
  int size() const { return size_; }

  void clear();
  /// Inserts every id in [0, size()).
  void insert_all();
  void swap(ActiveSet& other) noexcept;
  /// Copies membership from `other` (same size required).
  void assign(const ActiveSet& other);
  /// Merges every member of `other` into this set (same size required).
  void merge(const ActiveSet& other);

  /// Visits members in ascending id order. The callback must not mutate
  /// this set (the scheduler routes mid-cycle wakes to the next-cycle ring
  /// and the heap instead).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < bits_.size(); ++w) {
      std::uint64_t word = bits_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<int>(w * 64) + bit);
        word &= word - 1;
      }
    }
  }

 private:
  std::vector<std::uint64_t> bits_;
  int size_ = 0;
  int count_ = 0;
};

struct WakeEvent {
  Cycle cycle = 0;
  int id = 0;  ///< caller-defined id space (the Network packs routers + NIs)
};

class WakeHeap {
 public:
  void reserve(std::size_t capacity) { heap_.reserve(capacity); }
  void clear() { heap_.clear(); }
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  /// Earliest pending wake cycle; kCycleNever when empty.
  Cycle top_cycle() const { return heap_.empty() ? kCycleNever : heap_.front().cycle; }

  void push(Cycle cycle, int id);
  /// Removes and returns the earliest event. Precondition: !empty().
  WakeEvent pop();

 private:
  std::vector<WakeEvent> heap_;
};

}  // namespace nbtinoc::sim
