#pragma once
// Scenario descriptor: the knobs of one simulated experiment, mirroring the
// paper's Table I (processor/router micro-architecture and technology
// parameters). A Scenario fully determines a run — including the
// process-variation seed, which is derived from the scenario label so that
// every policy evaluated on the same {architecture, injection} pair sees the
// same sampled silicon (paper §IV-A).

#include <map>
#include <cstdint>
#include <string>

#include "nbtinoc/sim/clock.hpp"

namespace nbtinoc::sim {

/// Technology node parameters from Table I.
struct Technology {
  double vth_nominal_v = 0.180;  ///< nominal |Vth| (0.180 V @45nm, 0.160 V @32nm)
  double vth_sigma_v = 0.005;    ///< within-die Gaussian sigma [25]
  double vdd_v = 1.2;
  double temperature_k = 350.0;  ///< representative on-die operating temperature
  int node_nm = 45;

  static Technology node_45nm();
  static Technology node_32nm();
};

struct Scenario {
  std::string name;          ///< e.g. "4core-inj0.10"
  int mesh_width = 2;        ///< 2 -> 4-core, 4 -> 16-core
  int mesh_height = 2;
  /// Network shape: "mesh" (default), "torus", "ring", or "cmesh". Torus
  /// and ring need num_vcs >= 2 (dateline VC classes); see noc::TopologyKind.
  std::string topology = "mesh";
  /// NIs per router, "cmesh" only (must divide mesh_width); 1 otherwise.
  int concentration = 1;
  /// Routing mode: "dor" (dimension-order, the default; alias "xy"), "yx",
  /// or the mesh-only turn-model adaptive modes "west-first" / "odd-even"
  /// (escape-VC + least-stressed adaptive class; need num_vcs >= 2).
  std::string routing = "dor";
  int num_vcs = 4;           ///< virtual channels per vnet per input port (2 or 4 in the paper)
  int num_vnets = 1;         ///< virtual networks (Table I: 2/6; 1 = single-protocol study)
  int buffer_depth = 4;      ///< flits per VC buffer (Table I / §III-D)
  /// Input-port buffer organization: "partitioned" (per-VC banks, the
  /// paper's router) or "shared" (one DAMQ slot pool per port; VCs become
  /// descriptors and gating happens at slot granularity).
  std::string buffer_org = "partitioned";
  /// Shared organization only: flit slots reserved per VC (never gated
  /// away; >= 1 for deadlock safety). Must stay 1 under "partitioned".
  int shared_reserve = 1;
  int flit_width_bits = 64;  ///< flit size (area model, §III-D)
  int link_width_bits = 32;  ///< physical link width (Table I): 64b flits move as 2 phits
  int packet_length = 9;     ///< flits per packet: 64B line + 8B header over 64b flits
  double injection_rate = 0.1;  ///< flits/cycle/port for synthetic traffic
  Cycle wakeup_latency = 0;     ///< buffer wake-up delay; 0 = paper's instant set_idle
  int router_stages = 3;        ///< router pipeline depth; 3 = paper, 4/5 = Garnet-classic
  Cycle warmup_cycles = 60'000;
  Cycle measure_cycles = 240'000;
  double clock_period_s = 1e-9;  ///< 1 GHz (Table I)
  Technology tech = Technology::node_45nm();

  int cores() const { return mesh_width * mesh_height; }
  Cycle total_cycles() const { return warmup_cycles + measure_cycles; }

  /// Link-level serialization factor: a 64b flit crosses a 32b link as two
  /// phits. The cycle-accurate simulation runs in phit units (the quantum
  /// the link and buffers actually move per cycle), so packet length,
  /// buffer depth and injection rate are scaled by this factor.
  int phits_per_flit() const {
    return (flit_width_bits + link_width_bits - 1) / link_width_bits;
  }

  /// Seed for the process-variation Vth sampling: depends only on the
  /// architecture and traffic level, NOT on the policy, matching the paper's
  /// "same Vth values on the same simulated architecture and traffic level".
  std::uint64_t pv_seed() const;
  /// Seed for traffic generation; also policy-independent so that every
  /// policy replays an identical offered load.
  std::uint64_t traffic_seed() const;
  /// Seed for the fault-injection stream (xored with FaultPlan::seed_salt):
  /// policy-independent, so every policy faces the *same* fault storm on
  /// the same scenario.
  std::uint64_t fault_seed() const;

  /// Rejects impossible configurations with an actionable message
  /// (std::invalid_argument). Called by scenario_from_properties and by
  /// run_experiment before any simulation state is built.
  void validate() const;

  /// Scales warmup/measure to the paper's full 30e6-cycle runs (warmup 6e6
  /// for 4-core, 9e6 for 16-core).
  void use_paper_scale();

  /// Human-readable Table-I-style setup block.
  std::string describe() const;

  /// Canonical synthetic scenario used throughout Tables II/III.
  static Scenario synthetic(int mesh_width, int num_vcs, double injection_rate);
};

/// Builds a Scenario from a properties map (see util::load_properties).
/// Recognized keys (all optional, defaults as in Scenario):
///   name, mesh_width, mesh_height, topology (mesh|torus|ring|cmesh),
///   routing (dor|xy|yx|west-first|odd-even),
///   concentration, num_vcs, num_vnets, buffer_depth,
///   buffer_org (partitioned|shared), shared_reserve, flit_width_bits,
///   link_width_bits, packet_length, injection_rate, wakeup_latency,
///   warmup_cycles, measure_cycles, clock_ghz, technology_nm (45 or 32),
///   vth_sigma_v, temperature_k, vdd_v
/// Unknown keys throw std::invalid_argument (typo protection).
Scenario scenario_from_properties(const std::map<std::string, std::string>& props);

}  // namespace nbtinoc::sim
