#pragma once
// Simulation time base. The whole NoC is a single synchronous clock domain
// (paper: Tilera-style mesh @1 GHz), so time is just a cycle counter plus a
// clock period used when converting to wall-clock seconds for the NBTI model.

#include <cstdint>

namespace nbtinoc::sim {

using Cycle = std::uint64_t;

/// Synchronous clock: a monotonically advancing cycle counter with a fixed
/// period. `seconds_at(cycle)` feeds the NBTI long-term model, which needs
/// absolute elapsed time.
class Clock {
 public:
  explicit Clock(double period_seconds = 1e-9) : period_s_(period_seconds) {}

  Cycle now() const { return now_; }
  void tick() { ++now_; }
  void advance(Cycle cycles) { now_ += cycles; }
  void reset() { now_ = 0; }

  double period_seconds() const { return period_s_; }
  double frequency_hz() const { return 1.0 / period_s_; }
  double seconds_at(Cycle cycle) const { return static_cast<double>(cycle) * period_s_; }
  double seconds_now() const { return seconds_at(now_); }

 private:
  Cycle now_ = 0;
  double period_s_;
};

}  // namespace nbtinoc::sim
