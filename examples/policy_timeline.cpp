// Example: watch the policies work, cycle by cycle. Prints an ASCII
// timeline of one input port's VC states (I = idle/powered, A = active,
// R = recovery/gated) under each policy — rr-no-sensor's rotating awake VC
// and sensor-wise's parked most-degraded VC are immediately visible.
//
//   ./policy_timeline [--cycles 2000] [--window 120] [--rate 0.2]
//                     [--csv /tmp/timeline.csv]

#include <iostream>
#include <memory>

#include "nbtinoc/nbtinoc.hpp"
#include "nbtinoc/noc/state_probe.hpp"
#include "nbtinoc/util/cli.hpp"
#include "nbtinoc/util/table.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto cycles = static_cast<sim::Cycle>(args.get_int_or("cycles", 2'000));
  const auto window = static_cast<std::size_t>(args.get_int_or("window", 120));
  const double rate = args.get_double_or("rate", 0.2);

  sim::Scenario s = sim::Scenario::synthetic(2, 4, rate);
  const noc::PortKey key{0, noc::Dir::East};

  for (auto policy : {core::PolicyKind::kRrNoSensor, core::PolicyKind::kSensorWise}) {
    const int ppf = s.phits_per_flit();
    noc::NocConfig cfg;
    cfg.width = s.mesh_width;
    cfg.height = s.mesh_height;
    cfg.num_vcs = s.num_vcs;
    cfg.buffer_depth = s.buffer_depth * ppf;
    cfg.packet_length = s.packet_length * ppf;
    noc::Network net(cfg);

    const auto model = core::calibrated_model_of(s);
    core::PolicyConfig pc;
    pc.kind = policy;
    core::PolicyGateController ctrl(net, pc, model, core::operating_point_of(s),
                                    core::pv_config_of(s), s.pv_seed());
    ctrl.attach();
    traffic::install_uniform_traffic(net, s.injection_rate * ppf, s.traffic_seed());

    noc::PortStateProbe probe(net, key);
    for (sim::Cycle t = 0; t < cycles; ++t) {
      net.step();
      probe.sample();
    }

    std::cout << "=== " << to_string(policy) << "  (router 0, East input; MD = VC"
              << ctrl.most_degraded(key) << ")\n"
              << probe.ascii_timeline(window);
    for (int v = 0; v < cfg.total_vcs(); ++v) {
      const auto sh = probe.shares(v);
      std::cout << "VC" << v << " shares: idle " << util::format_percent(sh.idle * 100.0)
                << ", active " << util::format_percent(sh.active * 100.0) << ", recovery "
                << util::format_percent(sh.recovery * 100.0) << '\n';
    }
    std::cout << '\n';

    if (const auto csv = args.get("csv")) {
      const std::string path = *csv + "." + to_string(policy);
      probe.save_csv(path);
      std::cout << "(full timeline written to " << path << ")\n\n";
    }
  }
  std::cout << "Legend: I = powered idle (NBTI stress), A = holding a packet (stress),\n"
               "        R = power-gated (recovery).\n";
  return 0;
}
