// Example: spatial view of NBTI stress. Prints an ASCII heatmap of the
// average NBTI duty cycle per router (mean over its input-port VCs) under
// one or more policies and a traffic pattern — hotspot patterns light up
// the paths toward the hot node. Multiple policies (comma-separated, or
// "all") run as one parallel SweepRunner grid and print side by side.
//
//   ./duty_heatmap [--policy sensor-wise] [--pattern hotspot] [--cores 16]
//                  [--rate 0.2] [--cycles 120000] [--workers 0]
//   ./duty_heatmap --policy all             # every policy, one sweep
//   ./duty_heatmap --policy rr-no-sensor,sensor-wise

#include <iostream>

#include "nbtinoc/nbtinoc.hpp"
#include "nbtinoc/util/cli.hpp"
#include "nbtinoc/util/strings.hpp"
#include "nbtinoc/util/table.hpp"

using namespace nbtinoc;

namespace {

char shade(double duty_percent) {
  // 10 shades from '.' (cool) to '#' (always stressed).
  static const char kRamp[] = ".:-=+*%@$#";
  int idx = static_cast<int>(duty_percent / 10.0);
  if (idx < 0) idx = 0;
  if (idx > 9) idx = 9;
  return kRamp[idx];
}

std::vector<core::PolicyKind> parse_policies(const std::string& spec) {
  if (spec == "all")
    return {core::PolicyKind::kBaseline, core::PolicyKind::kRrNoSensor,
            core::PolicyKind::kSensorWiseNoTraffic, core::PolicyKind::kSensorWise,
            core::PolicyKind::kSensorRank};
  std::vector<core::PolicyKind> policies;
  for (const auto& name : util::split(spec, ','))
    policies.push_back(core::parse_policy(std::string(util::trim(name))));
  return policies;
}

// Average duty per router over every VC of every existing input port.
std::vector<double> router_duty_of(const core::RunResult& r, const sim::Scenario& s) {
  std::vector<double> duty(static_cast<std::size_t>(s.cores()), 0.0);
  std::vector<int> counts(static_cast<std::size_t>(s.cores()), 0);
  for (const auto& [key, port] : r.ports) {
    for (double d : port.duty_percent) {
      duty[static_cast<std::size_t>(key.router)] += d;
      ++counts[static_cast<std::size_t>(key.router)];
    }
  }
  for (std::size_t i = 0; i < duty.size(); ++i)
    if (counts[i] > 0) duty[i] /= counts[i];
  return duty;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto policies = parse_policies(args.get_or("policy", "sensor-wise"));
  const auto pattern = traffic::parse_pattern(args.get_or("pattern", "hotspot"));
  const int cores = static_cast<int>(args.get_int_or("cores", 16));
  const double rate = args.get_double_or("rate", 0.2);
  const auto cycles = static_cast<sim::Cycle>(args.get_int_or("cycles", 120'000));

  int width = 1;
  while (width * width < cores) ++width;
  sim::Scenario s = sim::Scenario::synthetic(width, 4, rate);
  s.warmup_cycles = cycles / 5;
  s.measure_cycles = cycles;

  std::cout << s.describe() << "  pattern         : " << to_string(pattern) << "\n\n";

  core::SweepOptions sweep_options;
  sweep_options.workers = static_cast<unsigned>(args.get_int_or("workers", 0));
  core::SweepRunner sweep(sweep_options);
  sweep.add_grid({s}, policies, pattern);
  const core::SweepResult results = sweep.run();

  std::cout << "Average NBTI duty cycle per router ('.'=0-10% ... '#'=90-100%):\n";
  for (const auto& point : results) {
    const std::vector<double> router_duty = router_duty_of(point.result, s);
    std::cout << "\npolicy: " << to_string(point.result.policy) << " ("
              << util::format_double(point.wall_seconds, 1) << "s)\n\n";
    for (int y = 0; y < s.mesh_height; ++y) {
      std::cout << "   ";
      for (int x = 0; x < s.mesh_width; ++x)
        std::cout << shade(router_duty[static_cast<std::size_t>(y * s.mesh_width + x)]) << ' ';
      std::cout << "    ";
      for (int x = 0; x < s.mesh_width; ++x) {
        std::cout << util::format_percent(
                         router_duty[static_cast<std::size_t>(y * s.mesh_width + x)])
                  << '\t';
      }
      std::cout << '\n';
    }
  }
  std::cout << "\n(hotspot node is router " << (s.cores() - 1)
            << "; under hotspot traffic its feeding paths run the hottest)\n";
  return 0;
}
