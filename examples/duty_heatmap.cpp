// Example: spatial view of NBTI stress. Prints an ASCII heatmap of the
// average NBTI duty cycle per router (mean over its input-port VCs) under a
// chosen policy and traffic pattern — hotspot patterns light up the paths
// toward the hot node.
//
//   ./duty_heatmap [--policy sensor-wise] [--pattern hotspot] [--cores 16]
//                  [--rate 0.2] [--cycles 120000]

#include <iostream>

#include "nbtinoc/nbtinoc.hpp"
#include "nbtinoc/util/cli.hpp"
#include "nbtinoc/util/table.hpp"

using namespace nbtinoc;

namespace {

char shade(double duty_percent) {
  // 10 shades from '.' (cool) to '#' (always stressed).
  static const char kRamp[] = ".:-=+*%@$#";
  int idx = static_cast<int>(duty_percent / 10.0);
  if (idx < 0) idx = 0;
  if (idx > 9) idx = 9;
  return kRamp[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto policy = core::parse_policy(args.get_or("policy", "sensor-wise"));
  const auto pattern = traffic::parse_pattern(args.get_or("pattern", "hotspot"));
  const int cores = static_cast<int>(args.get_int_or("cores", 16));
  const double rate = args.get_double_or("rate", 0.2);
  const auto cycles = static_cast<sim::Cycle>(args.get_int_or("cycles", 120'000));

  int width = 1;
  while (width * width < cores) ++width;
  sim::Scenario s = sim::Scenario::synthetic(width, 4, rate);
  s.warmup_cycles = cycles / 5;
  s.measure_cycles = cycles;

  std::cout << s.describe() << "  policy          : " << to_string(policy)
            << "\n  pattern         : " << to_string(pattern) << "\n\n";

  const auto r = core::run_experiment(s, policy, core::Workload::synthetic(pattern));

  // Average duty per router over every VC of every existing input port.
  std::vector<double> router_duty(static_cast<std::size_t>(s.cores()), 0.0);
  std::vector<int> counts(static_cast<std::size_t>(s.cores()), 0);
  for (const auto& [key, port] : r.ports) {
    for (double d : port.duty_percent) {
      router_duty[static_cast<std::size_t>(key.router)] += d;
      ++counts[static_cast<std::size_t>(key.router)];
    }
  }
  for (std::size_t i = 0; i < router_duty.size(); ++i)
    if (counts[i] > 0) router_duty[i] /= counts[i];

  std::cout << "Average NBTI duty cycle per router ('.'=0-10% ... '#'=90-100%):\n\n";
  for (int y = 0; y < s.mesh_height; ++y) {
    std::cout << "   ";
    for (int x = 0; x < s.mesh_width; ++x)
      std::cout << shade(router_duty[static_cast<std::size_t>(y * s.mesh_width + x)]) << ' ';
    std::cout << "    ";
    for (int x = 0; x < s.mesh_width; ++x) {
      std::cout << util::format_percent(router_duty[static_cast<std::size_t>(y * s.mesh_width + x)])
                << '\t';
    }
    std::cout << '\n';
  }
  std::cout << "\n(hotspot node is router " << (s.cores() - 1)
            << "; under hotspot traffic its feeding paths run the hottest)\n";
  return 0;
}
