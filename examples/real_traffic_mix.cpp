// Example: study one multi-programmed workload (a named benchmark per core,
// SPLASH2/WCET substitutes) and compare the NBTI policies on every router
// port — the Table-IV methodology as a library user would apply it to their
// own workload.
//
//   ./real_traffic_mix [--cores 4] [--vcs 2] [--cycles 150000]
//                      [--mix fft,lu,radix,barnes]

#include <iostream>

#include "nbtinoc/nbtinoc.hpp"
#include "nbtinoc/util/cli.hpp"
#include "nbtinoc/util/strings.hpp"
#include "nbtinoc/util/table.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const int cores = static_cast<int>(args.get_int_or("cores", 4));
  const int vcs = static_cast<int>(args.get_int_or("vcs", 2));
  const auto cycles = static_cast<sim::Cycle>(args.get_int_or("cycles", 150'000));

  int width = 1;
  while (width * width < cores) ++width;

  traffic::BenchmarkMix mix;
  if (const auto spec = args.get("mix")) {
    mix.names = util::split(*spec, ',');
    for (auto& name : mix.names) traffic::benchmark_by_name(name);  // validate
  } else {
    mix = traffic::random_mix(cores, 2026);
  }
  if (static_cast<int>(mix.names.size()) != cores) {
    std::cerr << "mix must name exactly " << cores << " benchmarks\n";
    return 1;
  }

  sim::Scenario s = sim::Scenario::synthetic(width, vcs, 0.0);
  s.name = std::to_string(cores) + "core-mix";
  s.warmup_cycles = cycles / 5;
  s.measure_cycles = cycles;

  std::cout << s.describe() << "  workload        : " << mix.describe() << "\n\n";

  const core::Workload workload = core::Workload::benchmark_mix(mix);
  const auto rr = core::run_experiment(s, core::PolicyKind::kRrNoSensor, workload);
  const auto sw = core::run_experiment(s, core::PolicyKind::kSensorWise, workload);

  util::Table table({"router/port", "MD VC", "rr MD duty", "sw MD duty", "Gap", "rr avg duty",
                     "sw avg duty"});
  for (const auto& [key, port] : sw.ports) {
    const auto md = static_cast<std::size_t>(port.most_degraded);
    const auto& rr_port = rr.ports.at(key);
    table.add_row({"r" + std::to_string(key.router) + "-" +
                       std::string(1, noc::dir_letter(key.port)),
                   std::to_string(port.most_degraded),
                   util::format_percent(rr_port.duty_percent[md]),
                   util::format_percent(port.duty_percent[md]),
                   util::format_percent(rr_port.duty_percent[md] - port.duty_percent[md]),
                   util::format_percent(util::mean_of(rr_port.duty_percent)),
                   util::format_percent(util::mean_of(port.duty_percent))});
  }
  std::cout << table.to_markdown() << '\n'
            << "Positive Gap on a port means sensor-wise protected its most degraded buffer "
               "better than the best sensor-less strategy.\n";
  return 0;
}
