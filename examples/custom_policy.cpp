// Example: writing your own NBTI recovery policy.
//
// The simulator exposes the mechanism/policy boundary the paper implies:
// every cycle the upstream pre-VA stage asks an IGateController what to do
// with each downstream input port (per virtual network), and the returned
// (enable, VC-ID) command is applied through the Up_Down link. This example
// implements a "duty-budget" policy from scratch — keep a VC awake only
// while its measured NBTI duty cycle is below a budget, else force it into
// recovery and rotate — and races it against the paper's policies.
//
//   ./custom_policy [--budget 20] [--cycles 120000]

#include <iostream>

#include "nbtinoc/nbtinoc.hpp"
#include "nbtinoc/util/cli.hpp"
#include "nbtinoc/util/table.hpp"

using namespace nbtinoc;

namespace {

/// Keeps every VC under a duty-cycle budget: among the idle VCs, prefer the
/// one with the lowest measured duty so far; additionally, refuse to keep a
/// VC awake once it exceeds the budget (unless it is the only candidate).
class DutyBudgetController final : public noc::IGateController {
 public:
  DutyBudgetController(noc::Network& network, double budget_percent)
      : network_(&network), budget_(budget_percent) {}

  noc::GateCommand decide(const noc::PortKey& key, const noc::OutVcStateView& view,
                          bool new_traffic, sim::Cycle now) override {
    noc::GateCommand cmd;
    cmd.gating_active = true;
    if (!new_traffic) return cmd;  // recover everything idle

    // Stress accounting is event-driven: flush this port's pending lazy
    // intervals before reading duty cycles mid-run.
    auto& iu = network_->router(key.router).input(key.port);
    iu.sync_stress(now);
    const auto& trackers = iu.trackers();
    int keep = noc::kInvalidVc;
    double best_duty = 1e18;
    int fallback = noc::kInvalidVc;
    for (int local = 0; local < view.num_vcs(); ++local) {
      if (view.is_active(local)) continue;
      const double duty =
          trackers.at(static_cast<std::size_t>(view.global_vc(local))).duty_cycle_percent();
      fallback = local;
      if (duty <= budget_ && duty < best_duty) {
        best_duty = duty;
        keep = local;
      }
    }
    if (keep == noc::kInvalidVc) keep = fallback;  // all over budget: least bad
    cmd.enable = keep != noc::kInvalidVc;
    cmd.keep_vc = keep;
    return cmd;
  }

  const char* name() const override { return "duty-budget"; }

 private:
  noc::Network* network_;
  double budget_;
};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const double budget = args.get_double_or("budget", 20.0);
  const auto cycles = static_cast<sim::Cycle>(args.get_int_or("cycles", 120'000));

  sim::Scenario s = sim::Scenario::synthetic(4, 4, 0.2);
  s.warmup_cycles = cycles / 5;
  s.measure_cycles = cycles;
  std::cout << s.describe() << "  custom policy   : duty-budget (" << budget << "% cap)\n\n";

  util::Table table({"policy", "VC0", "VC1", "VC2", "VC3", "max duty", "MD duty", "avg latency"});

  // Paper policies through the standard runner...
  for (auto policy : {core::PolicyKind::kRrNoSensor, core::PolicyKind::kSensorWise}) {
    const auto r = core::run_experiment(s, policy, core::Workload::synthetic());
    const auto& port = r.port(0, noc::Dir::East);
    std::vector<std::string> row{to_string(policy)};
    double max_duty = 0.0;
    for (double d : port.duty_percent) {
      row.push_back(util::format_percent(d));
      max_duty = std::max(max_duty, d);
    }
    row.push_back(util::format_percent(max_duty));
    row.push_back(util::format_percent(port.duty_percent[static_cast<std::size_t>(port.most_degraded)]));
    row.push_back(util::format_double(r.avg_packet_latency, 1));
    table.add_row(std::move(row));
  }

  // ... and the custom one wired manually (the lower-level API).
  {
    const int ppf = s.phits_per_flit();
    noc::NocConfig cfg;
    cfg.width = s.mesh_width;
    cfg.height = s.mesh_height;
    cfg.num_vcs = s.num_vcs;
    cfg.buffer_depth = s.buffer_depth * ppf;
    cfg.packet_length = s.packet_length * ppf;
    noc::Network net(cfg);
    DutyBudgetController controller(net, budget);
    net.set_gate_controller(&controller);
    traffic::install_uniform_traffic(net, s.injection_rate * ppf, s.traffic_seed());
    net.run_with_warmup(s.warmup_cycles, s.measure_cycles);

    const auto duties = net.duty_cycles_percent(0, noc::Dir::East);
    std::vector<std::string> row{"duty-budget"};
    double max_duty = 0.0;
    for (double d : duties) {
      row.push_back(util::format_percent(d));
      max_duty = std::max(max_duty, d);
    }
    row.push_back(util::format_percent(max_duty));
    row.push_back("n/a (no sensors)");
    const auto* lat = net.stats().distribution("noc.packet_latency");
    row.push_back(util::format_double(lat ? lat->mean() : 0.0, 1));
    table.add_row(std::move(row));
  }

  std::cout << table.to_markdown() << '\n'
            << "The duty-budget policy balances duty like rr-no-sensor but adapts to actual\n"
               "wear; unlike sensor-wise it cannot protect the PV-worst buffer specifically.\n";
  return 0;
}
