// Quickstart: simulate a 4x4 mesh under uniform traffic with each policy and
// print the NBTI duty cycles of the sampled input port (the paper's
// "east input port of the upper-left-most router").
//
//   ./quickstart [--cores 16] [--vcs 4] [--rate 0.2] [--cycles 300000]
//                [--topology mesh|torus|ring|cmesh] [--concentration 2]

#include <iostream>

#include "nbtinoc/nbtinoc.hpp"
#include "nbtinoc/util/cli.hpp"
#include "nbtinoc/util/table.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const int cores = static_cast<int>(args.get_int_or("cores", 16));
  const int vcs = static_cast<int>(args.get_int_or("vcs", 4));
  const double rate = args.get_double_or("rate", 0.2);
  const auto cycles = static_cast<sim::Cycle>(args.get_int_or("cycles", 300'000));

  int width = 1;
  while (width * width < cores) ++width;
  sim::Scenario scenario = sim::Scenario::synthetic(width, vcs, rate);
  scenario.topology = args.get_or("topology", scenario.topology);
  scenario.concentration = static_cast<int>(
      args.get_int_or("concentration", scenario.topology == "cmesh" ? 2 : 1));
  scenario.warmup_cycles = cycles / 5;
  scenario.measure_cycles = cycles - scenario.warmup_cycles;
  try {
    scenario.validate();
  } catch (const std::exception& e) {
    std::cerr << "bad scenario: " << e.what() << '\n';
    return 1;
  }

  std::cout << scenario.describe() << '\n';

  // The paper samples the east input port of the upper-left-most router.
  const noc::NodeId node = 0;
  const noc::Dir port = noc::Dir::East;

  std::vector<std::string> header{"policy"};
  for (int v = 0; v < vcs; ++v) header.push_back("VC" + std::to_string(v) + " duty");
  header.push_back("MD VC");
  header.push_back("avg latency");
  util::Table table(header);

  for (const auto policy : {core::PolicyKind::kBaseline, core::PolicyKind::kRrNoSensor,
                            core::PolicyKind::kSensorWiseNoTraffic, core::PolicyKind::kSensorWise}) {
    const core::RunResult result =
        core::run_experiment(scenario, policy, core::Workload::synthetic());
    const core::PortResult& p = result.port(node, port);
    std::vector<std::string> row{to_string(policy)};
    for (double duty : p.duty_percent) row.push_back(util::format_percent(duty));
    row.push_back(std::to_string(p.most_degraded));
    row.push_back(util::format_double(result.avg_packet_latency, 1));
    table.add_row(std::move(row));
  }

  std::cout << "\nNBTI-duty-cycle at router " << node << ", " << to_string(port)
            << " input port:\n\n"
            << table.to_markdown() << '\n'
            << "Lower duty = more recovery. sensor-wise should best protect the MD VC.\n";
  return 0;
}
