// Example: capture the offered load of an application mix into an NBTITRACE
// binary trace, then replay the byte-identical workload under two policies —
// the way to compare policies on externally produced traces (e.g. from a
// full-system simulator).
//
// The capture rides along a normal run_experiment call
// (RunnerOptions::capture_trace observes every offered packet without
// perturbing the run); the replays mmap the written file once and share the
// read-only mapping across both runs, zero-copy. Because the capturing run
// and the capture-policy replay see the identical offered load, their
// results match bit for bit — printed as a self-check below.
//
//   ./trace_replay [--cores 4] [--cycles 80000] [--trace /tmp/noc_trace.nbtitrace]

#include <iostream>

#include "nbtinoc/nbtinoc.hpp"
#include "nbtinoc/util/cli.hpp"
#include "nbtinoc/util/table.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const int cores = static_cast<int>(args.get_int_or("cores", 4));
  const auto cycles = static_cast<sim::Cycle>(args.get_int_or("cycles", 80'000));
  const std::string trace_path = args.get_or("trace", "/tmp/nbtinoc_trace.nbtitrace");

  int width = 1;
  while (width * width < cores) ++width;
  sim::Scenario s = sim::Scenario::synthetic(width, 2, 0.0);
  s.name = std::to_string(cores) + "core-trace";
  s.warmup_cycles = cycles / 5;
  s.measure_cycles = cycles;

  // 1. Capture: run the mix once under rr-no-sensor, recording what every
  // source offered (warmup included), and write the binary trace.
  const traffic::BenchmarkMix mix = traffic::random_mix(cores, 4242);
  const core::Workload mix_workload = core::Workload::benchmark_mix(mix);
  std::cout << "Capturing " << s.total_cycles() << " cycles of '" << mix.describe() << "'...\n";
  traffic::Trace captured;
  core::RunnerOptions capture_options;
  capture_options.capture_trace = &captured;
  const auto rr_live = core::run_experiment(s, core::PolicyKind::kRrNoSensor, mix_workload,
                                            capture_options);
  traffic::write_trace_file(trace_path, captured, cores, s.name + "/" + mix.describe());
  std::cout << "Saved " << captured.size() << " packets to " << trace_path << "\n\n";

  // 2. Replay the identical workload under both policies, zero-copy from
  // one shared mapping.
  const core::Workload replay = core::Workload::trace_replay(traffic::TraceFile::open(trace_path));
  const auto rr = core::run_experiment(s, core::PolicyKind::kRrNoSensor, replay);
  const auto sw = core::run_experiment(s, core::PolicyKind::kSensorWise, replay);
  std::cout << "packets delivered: rr=" << rr.packets_ejected << " sw=" << sw.packets_ejected
            << " (identical offered load)\n"
            << "capture/replay self-check: "
            << (core::to_json(rr_live) == core::to_json(rr) ? "bit-identical" : "DIVERGED!")
            << "\n\n";

  for (const auto& [key, port] : sw.ports) {
    const auto md = static_cast<std::size_t>(port.most_degraded);
    std::cout << "r" << key.router << "-" << noc::dir_letter(key.port) << ": MD=VC" << md
              << "  rr=" << util::format_percent(rr.ports.at(key).duty_percent[md])
              << "  sw=" << util::format_percent(port.duty_percent[md]) << "  gap="
              << util::format_percent(rr.ports.at(key).duty_percent[md] - port.duty_percent[md])
              << '\n';
  }
  return 0;
}
