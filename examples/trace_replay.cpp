// Example: capture the offered load of an application mix into a trace file,
// then replay the byte-identical workload under two policies — the way to
// compare policies on externally produced traces (e.g. from a full-system
// simulator).
//
//   ./trace_replay [--cores 4] [--cycles 80000] [--trace /tmp/noc_trace.csv]

#include <iostream>
#include <memory>

#include "nbtinoc/nbtinoc.hpp"
#include "nbtinoc/util/cli.hpp"
#include "nbtinoc/util/table.hpp"

using namespace nbtinoc;

namespace {

core::RunResult run_with_trace(const sim::Scenario& s, const traffic::Trace& trace,
                               core::PolicyKind policy) {
  // Assemble the network manually (run_experiment covers the common cases;
  // trace replay shows the lower-level API).
  noc::NocConfig cfg;
  cfg.width = s.mesh_width;
  cfg.height = s.mesh_height;
  cfg.num_vcs = s.num_vcs;
  cfg.buffer_depth = s.buffer_depth * s.phits_per_flit();
  cfg.packet_length = s.packet_length * s.phits_per_flit();
  noc::Network net(cfg);

  const nbti::NbtiModel model = core::calibrated_model_of(s);
  core::PolicyConfig pc;
  pc.kind = policy;
  core::PolicyGateController ctrl(net, pc, model, core::operating_point_of(s),
                                  core::pv_config_of(s), s.pv_seed());
  ctrl.attach();

  for (noc::NodeId id = 0; id < net.nodes(); ++id)
    net.set_traffic_source(id, std::make_unique<traffic::TraceReplaySource>(trace, id));

  net.run_with_warmup(s.warmup_cycles, s.measure_cycles);

  core::RunResult result;
  result.scenario = s;
  result.policy = policy;
  for (noc::NodeId id = 0; id < net.nodes(); ++id)
    for (int p = 0; p < noc::kNumDirs; ++p) {
      const auto dir = static_cast<noc::Dir>(p);
      if (!net.router(id).has_input(dir)) continue;
      core::PortResult port;
      port.duty_percent = net.duty_cycles_percent(id, dir);
      port.initial_vth_v = ctrl.initial_vths({id, dir});
      port.most_degraded = ctrl.most_degraded({id, dir});
      result.ports.emplace(noc::PortKey{id, dir}, std::move(port));
    }
  result.packets_ejected = net.stats().counter("noc.packets_ejected");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const int cores = static_cast<int>(args.get_int_or("cores", 4));
  const auto cycles = static_cast<sim::Cycle>(args.get_int_or("cycles", 80'000));
  const std::string trace_path = args.get_or("trace", "/tmp/nbtinoc_trace.csv");

  int width = 1;
  while (width * width < cores) ++width;
  sim::Scenario s = sim::Scenario::synthetic(width, 2, 0.0);
  s.name = std::to_string(cores) + "core-trace";
  s.warmup_cycles = cycles / 5;
  s.measure_cycles = cycles;

  // 1. Capture: record what a benchmark mix would offer, cycle by cycle.
  const traffic::BenchmarkMix mix = traffic::random_mix(cores, 4242);
  std::cout << "Capturing " << s.total_cycles() << " cycles of '" << mix.describe() << "'...\n";
  std::vector<std::unique_ptr<traffic::AppTrafficSource>> sources;
  std::vector<noc::ITrafficSource*> raw;
  for (noc::NodeId id = 0; id < cores; ++id) {
    auto profile = traffic::benchmark_by_name(mix.names[static_cast<std::size_t>(id)]);
    profile.mean_rate *= s.phits_per_flit();
    profile.packet_length = s.packet_length * s.phits_per_flit();
    sources.push_back(std::make_unique<traffic::AppTrafficSource>(
        id, profile, width, width, cores - 1, 1000 + static_cast<std::uint64_t>(id)));
    raw.push_back(sources.back().get());
  }
  const traffic::Trace trace = traffic::Trace::capture(raw, s.total_cycles());
  trace.save(trace_path);
  std::cout << "Saved " << trace.size() << " packets to " << trace_path << "\n\n";

  // 2. Replay the identical workload under both policies.
  const traffic::Trace loaded = traffic::Trace::load(trace_path);
  const auto rr = run_with_trace(s, loaded, core::PolicyKind::kRrNoSensor);
  const auto sw = run_with_trace(s, loaded, core::PolicyKind::kSensorWise);
  std::cout << "packets delivered: rr=" << rr.packets_ejected << " sw=" << sw.packets_ejected
            << " (identical offered load)\n\n";

  for (const auto& [key, port] : sw.ports) {
    const auto md = static_cast<std::size_t>(port.most_degraded);
    std::cout << "r" << key.router << "-" << noc::dir_letter(key.port) << ": MD=VC" << md
              << "  rr=" << util::format_percent(rr.ports.at(key).duty_percent[md])
              << "  sw=" << util::format_percent(port.duty_percent[md]) << "  gap="
              << util::format_percent(rr.ports.at(key).duty_percent[md] - port.duty_percent[md])
              << '\n';
  }
  return 0;
}
