// Example: project measured duty cycles into multi-year Vth trajectories and
// lifetime estimates using the calibrated Eq. 1 model — how a designer turns
// the simulator's NBTI statistics into reliability numbers.
//
//   ./aging_forecast [--cores 16] [--vcs 4] [--rate 0.1] [--budget-mv 30]

#include <iostream>

#include "nbtinoc/nbtinoc.hpp"
#include "nbtinoc/util/cli.hpp"
#include "nbtinoc/util/table.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const int cores = static_cast<int>(args.get_int_or("cores", 16));
  const int vcs = static_cast<int>(args.get_int_or("vcs", 4));
  const double rate = args.get_double_or("rate", 0.1);
  const double budget_mv = args.get_double_or("budget-mv", 30.0);

  int width = 1;
  while (width * width < cores) ++width;
  sim::Scenario s = sim::Scenario::synthetic(width, vcs, rate);
  s.warmup_cycles = 30'000;
  s.measure_cycles = 150'000;

  std::cout << s.describe() << '\n';

  const nbti::NbtiModel model = core::calibrated_model_of(s);
  const nbti::AgingForecaster forecaster(model, core::operating_point_of(s));
  std::cout << model.describe() << "\n\n";

  for (auto policy : {core::PolicyKind::kBaseline, core::PolicyKind::kRrNoSensor,
                      core::PolicyKind::kSensorWise}) {
    const auto r = core::run_experiment(s, policy, core::Workload::synthetic());
    const auto& port = r.port(0, noc::Dir::East);

    util::Table table({"VC", "initial Vth (V)", "duty", "dVth @1y (mV)", "dVth @3y (mV)",
                       "dVth @10y (mV)", "saving vs always-on @3y",
                       "years to +" + util::format_double(budget_mv, 0) + "mV"});
    for (int v = 0; v < vcs; ++v) {
      const nbti::BufferAgingInput input{port.initial_vth_v[static_cast<std::size_t>(v)],
                                         port.duty_percent[static_cast<std::size_t>(v)] / 100.0};
      const auto y1 = forecaster.forecast(input, 1.0);
      const auto y3 = forecaster.forecast(input, 3.0);
      const auto y10 = forecaster.forecast(input, 10.0);
      const double life = forecaster.lifetime_years(input, budget_mv * 1e-3, 30.0);
      table.add_row({std::to_string(v) + (v == port.most_degraded ? " (MD)" : ""),
                     util::format_double(input.initial_vth_v, 4),
                     util::format_percent(input.alpha * 100.0),
                     util::format_double(y1.delta_vth_v * 1e3, 2),
                     util::format_double(y3.delta_vth_v * 1e3, 2),
                     util::format_double(y10.delta_vth_v * 1e3, 2),
                     util::format_percent(y3.saving_vs_always_on * 100.0),
                     life >= 30.0 ? ">30" : util::format_double(life, 1)});
    }
    std::cout << "Policy: " << to_string(policy) << " (router 0, East input port)\n"
              << table.to_markdown() << '\n';
  }
  std::cout << "The sensor-wise rows show the paper's headline: the most degraded VC ages far\n"
               "slower than under the always-powered baseline (up to ~54% less dVth).\n";
  return 0;
}
