// Example: sweep injection rates and traffic patterns under a chosen policy
// and print a CSV of NBTI duty cycles and network performance — the kind of
// design-space exploration the library is meant for.
//
//   ./synthetic_sweep [--policy sensor-wise] [--cores 16] [--vcs 4]
//                     [--cycles 150000] [--patterns uniform,transpose,hotspot]

#include <iostream>

#include "nbtinoc/nbtinoc.hpp"
#include "nbtinoc/util/cli.hpp"
#include "nbtinoc/util/strings.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto policy = core::parse_policy(args.get_or("policy", "sensor-wise"));
  const int cores = static_cast<int>(args.get_int_or("cores", 16));
  const int vcs = static_cast<int>(args.get_int_or("vcs", 4));
  const auto cycles = static_cast<sim::Cycle>(args.get_int_or("cycles", 150'000));
  const auto pattern_list = util::split(args.get_or("patterns", "uniform,transpose,hotspot"), ',');

  int width = 1;
  while (width * width < cores) ++width;

  std::cout << "pattern,injection_rate,md_vc,md_duty_pct,avg_duty_pct,avg_latency,"
               "throughput_phit_per_cycle_node\n";
  for (const auto& pattern_name : pattern_list) {
    const auto pattern = traffic::parse_pattern(pattern_name);
    for (double rate : {0.05, 0.1, 0.15, 0.2, 0.25, 0.3}) {
      sim::Scenario s = sim::Scenario::synthetic(width, vcs, rate);
      s.warmup_cycles = cycles / 5;
      s.measure_cycles = cycles;
      const auto r = core::run_experiment(s, policy, core::Workload::synthetic(pattern));
      const auto& port = r.port(0, noc::Dir::East);
      const auto md = static_cast<std::size_t>(port.most_degraded);
      std::cout << pattern_name << ',' << rate << ',' << md << ','
                << port.duty_percent[md] << ',' << util::mean_of(port.duty_percent) << ','
                << r.avg_packet_latency << ',' << r.throughput_flits_per_cycle_per_node << '\n';
    }
  }
  return 0;
}
