// Fault storm: replay one scenario under sensor-wise while the gating
// control path degrades around it — sensors get stuck/drift/die, Up_Down
// commands drop or corrupt, Down_Up reports go missing, wakes fail — and
// watch the graceful-degradation machinery work: the invariant checker
// proves no flit is ever lost, and the health watchdogs quarantine ports
// with failing sensors (falling back to rr-no-sensor there) and recover
// them when the transient faults repair.
//
//   ./fault_storm [--rate 0.02] [--inj 0.2] [--cycles 200000] [--seed-salt 0]

#include <iostream>

#include "nbtinoc/nbtinoc.hpp"
#include "nbtinoc/util/cli.hpp"
#include "nbtinoc/util/table.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const double fault_rate = args.get_double_or("rate", 0.02);
  const double inj = args.get_double_or("inj", 0.2);
  const auto cycles = static_cast<sim::Cycle>(args.get_int_or("cycles", 200'000));
  const auto salt = static_cast<std::uint64_t>(args.get_int_or("seed-salt", 0));

  sim::Scenario scenario = sim::Scenario::synthetic(4, 4, inj);
  scenario.warmup_cycles = cycles / 5;
  scenario.measure_cycles = cycles - scenario.warmup_cycles;

  core::RunnerOptions ropt;
  ropt.faults = sim::FaultPlan::uniform(fault_rate, salt);
  ropt.check_invariants = true;

  std::cout << scenario.describe() << '\n'
            << "Fault plan: " << ropt.faults.describe() << "\n\n";

  util::Table table({"policy", "MD duty", "avg latency", "cmd drops", "cmd flips", "wake fails",
                     "down_up drops", "faulty epochs", "quarantines", "recoveries", "violations"});

  for (const auto policy : {core::PolicyKind::kRrNoSensor, core::PolicyKind::kSensorWise,
                            core::PolicyKind::kSensorRank}) {
    const core::RunResult r =
        core::run_experiment(scenario, policy, core::Workload::synthetic(), ropt);
    const core::PortResult& p = r.port(0, noc::Dir::East);
    const auto count = [&](const char* key) {
      const auto it = r.fault_counters.find(key);
      return std::to_string(it == r.fault_counters.end() ? 0 : it->second);
    };
    table.add_row({to_string(policy),
                   util::format_percent(p.duty_percent[static_cast<std::size_t>(p.most_degraded)]),
                   util::format_double(r.avg_packet_latency, 1), count("fault.gate_cmd_drops"),
                   count("fault.gate_cmd_flips"), count("fault.wake_failures"),
                   count("fault.down_up_drops"),
                   count("fault.sensor_stuck") + "/" + count("fault.sensor_drifting") + "/" +
                       count("fault.sensor_dead"),
                   count("fault.quarantines"), count("fault.recoveries"),
                   std::to_string(r.invariant_violations.size())});
    for (const auto& v : r.invariant_violations)
      std::cerr << "violation (" << to_string(policy) << "): " << v << '\n';
  }

  std::cout << table.to_markdown() << '\n'
            << "faulty epochs column: stuck/drifting/dead transition counts.\n"
            << "Zero violations = the storm never cost a flit; quarantines show the sensor\n"
            << "policies detecting bad ports and degrading to rr-no-sensor there.\n";
  return 0;
}
