// Sharded Monte-Carlo fleet reliability front end (EXPERIMENTS.md X17):
//
//   # everything on one machine
//   ./fleet_runner --chips 256 --out fleet
//
//   # or shard across machines / invocations, then merge the partials
//   ./fleet_runner --chips 256 --shard 0/4 --out fleet    # -> fleet.shard0
//   ./fleet_runner --chips 256 --shard 1/4 --out fleet    # -> fleet.shard1
//   ...
//   ./fleet_runner --chips 256 --merge fleet.shard0,fleet.shard1,... --out fleet
//
// Every chip is an independent process-variation silicon sample; each runs
// every policy under every workload, and the chip's failure time is the
// year its --fraction order statistic of VC lifetimes crosses --budget-mv.
// The merged fleet.json / fleet.csv are byte-identical for any --workers
// value and any shard split (the merge validates that the partials belong
// to this exact configuration and cover every point exactly once).

#include <fstream>
#include <iostream>
#include <sstream>

#include "nbtinoc/core/fleet.hpp"
#include "nbtinoc/util/cli.hpp"
#include "nbtinoc/util/strings.hpp"

using namespace nbtinoc;

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out || !out.write(content.data(), static_cast<std::streamsize>(content.size()))) {
    std::cerr << "error: cannot write " << path << '\n';
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);

  core::FleetSpec spec;
  spec.scenario = sim::Scenario::synthetic(
      static_cast<int>(args.get_int_or("mesh", 4)), static_cast<int>(args.get_int_or("vcs", 4)),
      args.get_double_or("rate", 0.2));
  spec.scenario.warmup_cycles = static_cast<sim::Cycle>(args.get_int_or("warmup", 2'000));
  spec.scenario.measure_cycles = static_cast<sim::Cycle>(args.get_int_or("measure", 20'000));
  spec.chips = static_cast<int>(args.get_int_or("chips", 64));
  spec.dvth_budget_v = args.get_double_or("budget-mv", 30.0) * 1e-3;
  spec.failure_fraction = args.get_double_or("fraction", 0.01);
  spec.max_years = args.get_double_or("max-years", 30.0);

  spec.policies.clear();
  for (const std::string& name :
       util::split(args.get_or("policies", "baseline,sensor-wise"), ','))
    spec.policies.push_back(core::parse_policy(name));

  const std::string out_stem = args.get_or("out", "fleet");
  const auto workers = static_cast<unsigned>(args.get_int_or("workers", 0));

  try {
    if (const auto merge_list = args.get("merge")) {
      // Merge mode: read every partial, validate, reduce, export.
      std::vector<core::FleetShardResult> shards;
      for (const std::string& path : util::split(*merge_list, ',')) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
          std::cerr << "error: cannot read shard partial " << path << '\n';
          return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        shards.push_back(core::parse_fleet_shard(buffer.str()));
      }
      const core::FleetReport report = core::merge_fleet_shards(spec, std::move(shards));
      if (!write_file(out_stem + ".json", report.to_json())) return 1;
      if (!write_file(out_stem + ".csv", report.to_csv())) return 1;
      std::cout << report.to_csv() << "merged " << spec.total_points() << " points -> "
                << out_stem << ".json, " << out_stem << ".csv\n";
      return 0;
    }

    int shard_index = 0;
    int shard_count = 1;
    if (const auto shard = args.get("shard")) {
      const auto parts = util::split(*shard, '/');
      if (parts.size() != 2) {
        std::cerr << "error: --shard wants i/N (e.g. --shard 2/8), got '" << *shard << "'\n";
        return 2;
      }
      shard_index = std::stoi(parts[0]);
      shard_count = std::stoi(parts[1]);
    }

    if (shard_count == 1) {
      // Single-invocation path: run + merge in-process.
      const core::FleetReport report = core::run_fleet(spec, workers);
      if (!write_file(out_stem + ".json", report.to_json())) return 1;
      if (!write_file(out_stem + ".csv", report.to_csv())) return 1;
      std::cout << report.to_csv() << spec.total_points() << " points -> " << out_stem
                << ".json, " << out_stem << ".csv\n";
    } else {
      const core::FleetShardResult shard = core::run_fleet_shard(
          spec, shard_index, shard_count, workers);
      const std::string path = out_stem + ".shard" + std::to_string(shard_index);
      if (!write_file(path, core::serialize_fleet_shard(shard))) return 1;
      std::cout << "shard " << shard_index << "/" << shard_count << ": " << shard.outcomes.size()
                << " of " << shard.total_points << " points -> " << path
                << "\nmerge with: --merge <all " << shard_count << " partials> --out " << out_stem
                << " (same flags otherwise)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
