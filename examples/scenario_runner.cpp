// Scenario-file driven simulator front end:
//
//   ./scenario_runner my_scenario.cfg [--policy sensor-wise] [--json out.json]
//                                 [--workload uniform|transpose|...|mix|datacenter]
//                                 [--buffer-org partitioned|shared]
//                                 [--shared-reserve N]
//                                 [--capture trace.nbtitrace]
//                                 [--replay trace.nbtitrace]
//                                 [--snapshot state.snap --at 40000]
//                                 [--resume state.snap]
//                                 [--dump-routes [--kill 3E,5]]
//
// --buffer-org / --shared-reserve override the scenario file's buffer
// organization: "shared" swaps every input port's per-VC banks for one
// DAMQ slot pool (slot-granularity gating; pair with --policy
// sensor-wise-slot-md or rr-slot), reserving N flits per VC.
//
// --capture records the run's offered load (warmup included, observation
// only — the printed results are unaffected) into an NBTITRACE binary
// trace. --replay ignores --workload and replays such a file as the
// workload, zero-copy from one read-only mapping; the combined
// capture-then-replay pair prints bit-identical results.
//
// --snapshot/--at pauses the run at the given absolute cycle, serializes
// the complete simulation state to the file, then continues to completion
// (the printed results are unaffected). --resume restarts a later
// invocation from such a file — the scenario/policy/workload flags must
// match the snapshotting run, and the combined output is bit-identical to
// an uninterrupted one (sim/snapshot.hpp, ARCHITECTURE.md §13).
//
// --dump-routes skips the simulation and prints the scenario's route table,
// per-link VC-class/orientation inventory and CDG audit verdicts
// (noc::describe_routes). --kill applies structural failures first — a
// comma list of "<router><NSEW>" link kills and bare "<router>" router
// kills — and prints the table before and after the degradation, showing
// how the up*/down* regeneration rewired the fabric.
//
// The scenario file uses "key = value" lines; see
// sim::scenario_from_properties for the accepted keys. Example:
//
//   # 16-core study
//   mesh_width     = 4
//   num_vcs        = 4
//   injection_rate = 0.2
//   measure_cycles = 150000
//   warmup_cycles  = 30000

#include <fstream>
#include <iostream>
#include <iterator>

#include "nbtinoc/nbtinoc.hpp"
#include "nbtinoc/noc/fault_routing.hpp"
#include "nbtinoc/noc/topology.hpp"
#include "nbtinoc/sim/snapshot.hpp"
#include "nbtinoc/util/cli.hpp"
#include "nbtinoc/util/properties.hpp"
#include "nbtinoc/util/strings.hpp"
#include "nbtinoc/util/table.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::cerr << "usage: " << args.program()
              << " <scenario.cfg> [--policy NAME] [--workload uniform|...|mix] [--json FILE]\n";
    return 2;
  }

  sim::Scenario scenario;
  try {
    scenario = sim::scenario_from_properties(util::load_properties(args.positional()[0]));
  } catch (const std::exception& e) {
    std::cerr << "error reading scenario: " << e.what() << '\n';
    return 1;
  }

  // Command-line buffer-organization overrides, re-validated so a bad
  // combination fails here with the scenario's message instead of deep in
  // the run.
  if (args.has("buffer-org") || args.has("shared-reserve")) {
    if (const auto org = args.get("buffer-org")) scenario.buffer_org = *org;
    scenario.shared_reserve =
        static_cast<int>(args.get_int_or("shared-reserve", scenario.shared_reserve));
    try {
      scenario.validate();
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 2;
    }
  }

  if (args.has("dump-routes")) {
    noc::NocConfig config;
    config.width = scenario.mesh_width;
    config.height = scenario.mesh_height;
    config.topology = noc::parse_topology_kind(scenario.topology);
    config.routing = noc::parse_routing_algo(scenario.routing);
    config.concentration = scenario.concentration;
    config.num_vcs = scenario.num_vcs;
    config.num_vnets = scenario.num_vnets;
    const auto topo = noc::Topology::create(config);
    std::cout << "--- routes (healthy) ---\n" << noc::describe_routes(*topo);
    if (const auto kills = args.get("kill")) {
      for (const std::string& token : util::split(*kills, ',')) {
        if (token.empty()) continue;
        std::size_t pos = 0;
        const int router = std::stoi(token, &pos);
        bool changed = false;
        if (pos == token.size()) {
          changed = topo->kill_router(router);
        } else if (pos + 1 == token.size()) {
          const auto dir = std::string("NSEW").find(token[pos]);
          if (dir == std::string::npos) {
            std::cerr << "bad --kill token '" << token << "' (want e.g. 3E or 5)\n";
            return 2;
          }
          changed = topo->kill_link(router, static_cast<noc::Dir>(dir));
        } else {
          std::cerr << "bad --kill token '" << token << "' (want e.g. 3E or 5)\n";
          return 2;
        }
        if (!changed) std::cerr << "note: '" << token << "' was already dead or unwired\n";
      }
      std::cout << "--- routes (degraded: " << *kills << ") ---\n"
                << noc::describe_routes(*topo);
    }
    return 0;
  }

  const auto policy = core::parse_policy(args.get_or("policy", "sensor-wise"));
  const auto replay_path = args.get("replay");
  const auto capture_path = args.get("capture");
  if (replay_path && capture_path) {
    std::cerr << "error: --capture and --replay are mutually exclusive (re-capturing a replay "
                 "reproduces the input trace)\n";
    return 2;
  }
  std::string workload_name = args.get_or("workload", "uniform");

  core::Workload workload;
  try {
    if (replay_path) {
      workload = core::Workload::trace_replay(traffic::TraceFile::open(*replay_path));
      workload_name = "replay:" + *replay_path;
    } else if (workload_name == "mix") {
      workload = core::Workload::benchmark_mix(
          traffic::random_mix(scenario.cores(), scenario.traffic_seed()));
    } else if (workload_name == "datacenter") {
      workload = core::Workload::datacenter_aggregate(traffic::DatacenterProfile{});
    } else {
      workload = core::Workload::synthetic(traffic::parse_pattern(workload_name));
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  std::cout << scenario.describe() << "  policy          : " << to_string(policy)
            << "\n  workload        : " << workload_name << "\n\n";

  core::RunnerOptions ropt;
  std::string snapshot_bytes;
  const auto snapshot_path = args.get("snapshot");
  const auto resume_path = args.get("resume");
  if (snapshot_path && resume_path) {
    std::cerr << "error: --snapshot and --resume are mutually exclusive (one run either "
                 "produces a checkpoint or starts from one)\n";
    return 2;
  }
  if (args.has("at") && !snapshot_path) {
    std::cerr << "error: --at only makes sense with --snapshot <file>\n";
    return 2;
  }
  if (snapshot_path) {
    if (!args.has("at")) {
      std::cerr << "error: --snapshot needs --at <cycle> (absolute cycle, 0 <= at <= "
                << scenario.warmup_cycles + scenario.measure_cycles << " for this scenario)\n";
      return 2;
    }
    ropt.snapshot_at = static_cast<sim::Cycle>(args.get_int_or("at", 0));
    ropt.snapshot_out = &snapshot_bytes;
  }
  if (resume_path) {
    std::ifstream in(*resume_path, std::ios::binary);
    if (!in) {
      std::cerr << "error: cannot read snapshot file " << *resume_path << '\n';
      return 1;
    }
    ropt.resume_from.emplace(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }

  traffic::Trace captured;
  if (capture_path) ropt.capture_trace = &captured;

  core::RunResult result;
  try {
    result = core::run_experiment(scenario, policy, workload, ropt);
  } catch (const sim::SnapshotError& e) {
    std::cerr << "snapshot error: " << e.what()
              << "\n(resume with the same scenario file, --policy and --workload that "
                 "produced the snapshot)\n";
    return 1;
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }

  if (capture_path) {
    try {
      traffic::write_trace_file(*capture_path, captured, scenario.cores(),
                                scenario.name + "/" + workload_name + "/policy=" +
                                    to_string(policy));
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 1;
    }
    std::cout << "trace (" << captured.size() << " packets) written to " << *capture_path
              << "\n\n";
  }

  if (snapshot_path) {
    std::ofstream out(*snapshot_path, std::ios::binary);
    if (!out || !out.write(snapshot_bytes.data(),
                           static_cast<std::streamsize>(snapshot_bytes.size()))) {
      std::cerr << "error: cannot write snapshot to " << *snapshot_path << '\n';
      return 1;
    }
    std::cout << "snapshot (" << snapshot_bytes.size() << " bytes, cycle "
              << *ropt.snapshot_at << ") written to " << *snapshot_path << "\n\n";
  }

  util::Table table({"router/port", "MD VC", "MD duty", "avg duty", "gate transitions"});
  for (const auto& [key, port] : result.ports) {
    const auto md = static_cast<std::size_t>(port.most_degraded);
    std::uint64_t transitions = 0;
    for (auto t : port.gate_transitions) transitions += t;
    table.add_row({std::string("r")
                       .append(std::to_string(key.router))
                       .append(1, '-')
                       .append(1, noc::dir_letter(key.port)),
                   std::to_string(port.most_degraded),
                   util::format_percent(port.duty_percent[md]),
                   util::format_percent(util::mean_of(port.duty_percent)),
                   std::to_string(transitions)});
  }
  std::cout << table.to_markdown() << '\n'
            << "packets: " << result.packets_ejected
            << ", avg latency: " << util::format_double(result.avg_packet_latency, 1)
            << " cycles, throughput: "
            << util::format_double(result.throughput_flits_per_cycle_per_node, 3)
            << " phits/cycle/node\n";

  if (const auto json_path = args.get("json")) {
    std::ofstream out(*json_path);
    if (!out) {
      std::cerr << "cannot write " << *json_path << '\n';
      return 1;
    }
    out << core::to_json(result) << '\n';
    std::cout << "JSON written to " << *json_path << '\n';
  }
  return 0;
}
